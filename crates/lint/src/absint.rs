//! Interval abstract interpretation over the lowered IR — rules R9–R11.
//!
//! The lexical (R1–R5) and syntactic/taint (R6–R8) layers check *shape*;
//! this layer checks *numbers*. Every function body lowered by
//! [`crate::ir`] is evaluated over an abstract domain of closed `f64`
//! intervals with a separate may-be-NaN flag, and three rule families read
//! the results:
//!
//! * **R9 envelope-soundness** — every value flowing into an actuator
//!   `encode`/`encode_into` sink is provably inside the physical plant
//!   limits declared in `units::limits`.
//! * **R10 threshold-consistency** — the canonical gate/IDS/escalation
//!   constants satisfy the cross-constant inequalities the controller
//!   dynamics assume, and the runtime config constructors reproduce them.
//! * **R11 clamp-hygiene** — no inverted clamps, no provably-dead clamps,
//!   no NaN-producing arithmetic reaching actuation unguarded.
//!
//! # Soundness stance
//!
//! The analysis is *sound for boundedness, best-effort for NaN*. Anything
//! the lowering or evaluator does not model becomes [`AbsVal::Opaque`]
//! (no information), which can never be proven bounded — surprises surface
//! as R9 "unprovable" findings rather than silently passing. The
//! `maybe_nan` flag, by contrast, tracks *operations that can manufacture
//! NaN from ordinary inputs* (`0/0`, `sqrt` of a possibly-negative value,
//! `asin` outside `[-1, 1]`, …): an unknown value is treated as an unknown
//! *number*, not as possibly-NaN ("Unknown ≠ NaN"), so ⊤ carries
//! `maybe_nan = false`. Overflow-to-infinity is out of scope.
//!
//! Interval refinement at guards is NaN-aware: a *positive* ordered
//! comparison (`x > 0.0` taken true) proves the operand is not NaN,
//! because every ordered comparison with a NaN operand is false. This is
//! what proves divisions like `a / (2.0 * gap_err)` clean under a
//! `gap_err > 0.0` guard — `next_up` gives the exact strict bound.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::diag::{Diagnostic, Rule, Severity};
use crate::interval::{next_down, next_up, Interval, TOP};
use crate::ir::{lower, BinOp, Expr, FileIr, Stmt, UnOp};
use crate::tokenizer::SourceFile;

/// Inlining/summary recursion depth cap.
const MAX_DEPTH: u32 = 24;
/// Loop fixpoint iteration cap (widening converges far earlier).
const MAX_LOOP_ITERS: u32 = 10;
/// Provenance-chain length cap per value.
const MAX_CHAIN: usize = 6;
/// Bodies with at most this many top-level statements inline with actual
/// arguments; larger bodies use a memoized ⊤-parameter summary.
const INLINE_STMTS: usize = 3;

/// Fallback physical accel floor (m/s²) when `PHYS_BRAKE_MIN_MPS2` is not
/// in scope (fixture files); mirrors `units::limits`.
const FALLBACK_ACCEL_MIN: f64 = -9.8;
/// Fallback physical accel ceiling (m/s²).
const FALLBACK_ACCEL_MAX: f64 = 5.0;
/// Fallback physical steering limit (degrees).
const FALLBACK_STEER_DEG: f64 = 5.0;

/// Miles-per-hour → metres-per-second conversion used by `from_mph`.
const MPH_TO_MPS: f64 = 0.44704;

/// An abstract number: interval shape, NaN possibility, and a short
/// human-readable provenance chain for diagnostics.
#[derive(Debug, Clone)]
pub struct NumVal {
    /// Interval over-approximation of the value.
    pub iv: Interval,
    /// Whether a NaN-producing operation may have fed this value.
    pub maybe_nan: bool,
    /// Most recent provenance notes (capped at a small length).
    pub chain: Vec<String>,
}

impl NumVal {
    /// The unconstrained, clean number (⊤; not-NaN by convention).
    pub fn top() -> Self {
        NumVal {
            iv: TOP,
            maybe_nan: false,
            chain: Vec::new(),
        }
    }

    /// The singleton `[c, c]`.
    pub fn point(c: f64) -> Self {
        NumVal {
            iv: Interval::point(c),
            maybe_nan: false,
            chain: Vec::new(),
        }
    }

    fn push(&mut self, note: String) {
        if self.chain.len() < MAX_CHAIN {
            self.chain.push(note);
        }
    }

    fn describe(&self) -> String {
        let nan = if self.maybe_nan { ", may be NaN" } else { "" };
        if self.chain.is_empty() {
            format!("[{}, {}]{}", self.iv.lo, self.iv.hi, nan)
        } else {
            format!(
                "[{}, {}]{} (via {})",
                self.iv.lo,
                self.iv.hi,
                nan,
                self.chain.join(" ← ")
            )
        }
    }
}

/// An abstract value: a number, a field map, or no information.
#[derive(Debug, Clone)]
pub enum AbsVal {
    /// A numeric value.
    Num(NumVal),
    /// A struct as a map from field name to abstract value.
    Struct(BTreeMap<String, AbsVal>),
    /// Unmodelled (⊤ without even a numeric shape).
    Opaque,
}

impl AbsVal {
    fn as_num(&self) -> Option<&NumVal> {
        match self {
            AbsVal::Num(n) => Some(n),
            _ => None,
        }
    }

    /// Least upper bound (join). Mismatched shapes collapse to `Opaque`.
    fn join(a: &AbsVal, b: &AbsVal) -> AbsVal {
        match (a, b) {
            (AbsVal::Num(x), AbsVal::Num(y)) => AbsVal::Num(NumVal {
                iv: x.iv.join(y.iv),
                maybe_nan: x.maybe_nan || y.maybe_nan,
                chain: merge_chain(&x.chain, &y.chain),
            }),
            (AbsVal::Struct(x), AbsVal::Struct(y)) => {
                let mut out = BTreeMap::new();
                for (k, vx) in x {
                    if let Some(vy) = y.get(k) {
                        out.insert(k.clone(), AbsVal::join(vx, vy));
                    }
                }
                AbsVal::Struct(out)
            }
            _ => AbsVal::Opaque,
        }
    }

    /// Widening: like join, but moved interval bounds jump to ±∞ so loop
    /// fixpoints terminate.
    fn widen(prev: &AbsVal, next: &AbsVal) -> AbsVal {
        match (prev, next) {
            (AbsVal::Num(x), AbsVal::Num(y)) => {
                let w = Interval::widen(x.iv, y.iv);
                let mut chain = merge_chain(&x.chain, &y.chain);
                let marker = "widened in loop fixpoint".to_string();
                if !iv_bits_eq(w, x.iv) && chain.len() < MAX_CHAIN && !chain.contains(&marker) {
                    chain.push(marker);
                }
                AbsVal::Num(NumVal {
                    iv: w,
                    maybe_nan: x.maybe_nan || y.maybe_nan,
                    chain,
                })
            }
            (AbsVal::Struct(x), AbsVal::Struct(y)) => {
                let mut out = BTreeMap::new();
                for (k, vx) in x {
                    if let Some(vy) = y.get(k) {
                        out.insert(k.clone(), AbsVal::widen(vx, vy));
                    }
                }
                AbsVal::Struct(out)
            }
            _ => AbsVal::Opaque,
        }
    }

    /// Semantic equality for fixpoint detection (bitwise on bounds; the
    /// provenance chain is ignored).
    fn same(a: &AbsVal, b: &AbsVal) -> bool {
        match (a, b) {
            (AbsVal::Num(x), AbsVal::Num(y)) => {
                iv_bits_eq(x.iv, y.iv) && x.maybe_nan == y.maybe_nan
            }
            (AbsVal::Struct(x), AbsVal::Struct(y)) => {
                x.len() == y.len()
                    && x.iter()
                        .all(|(k, vx)| y.get(k).is_some_and(|vy| AbsVal::same(vx, vy)))
            }
            (AbsVal::Opaque, AbsVal::Opaque) => true,
            _ => false,
        }
    }
}

/// Bitwise interval equality — fixpoint detection must not use float `==`
/// semantics (R4 applies to the linter's own source).
fn iv_bits_eq(a: Interval, b: Interval) -> bool {
    a.lo.to_bits() == b.lo.to_bits() && a.hi.to_bits() == b.hi.to_bits()
}

fn merge_chain(a: &[String], b: &[String]) -> Vec<String> {
    let mut out: Vec<String> = a.to_vec();
    for s in b {
        if out.len() >= MAX_CHAIN {
            break;
        }
        if !out.contains(s) {
            out.push(s.clone());
        }
    }
    out
}

/// Abstract environment: dotted place → value (`"x"`,
/// `"self.last_control"`, `"%ret"`).
type Env = BTreeMap<String, AbsVal>;

fn join_env(mut a: Env, b: Env) -> Env {
    for (k, vb) in b {
        match a.remove(&k) {
            Some(va) => {
                let j = AbsVal::join(&va, &vb);
                a.insert(k, j);
            }
            None => {
                a.insert(k, vb);
            }
        }
    }
    a
}

fn widen_env(prev: &Env, next: Env) -> Env {
    let mut out = Env::new();
    for (k, vn) in next {
        match prev.get(&k) {
            Some(vp) => {
                out.insert(k, AbsVal::widen(vp, &vn));
            }
            None => {
                out.insert(k, vn);
            }
        }
    }
    for (k, vp) in prev {
        out.entry(k.clone()).or_insert_with(|| vp.clone());
    }
    out
}

fn env_same(a: &Env, b: &Env) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|(k, va)| b.get(k).is_some_and(|vb| AbsVal::same(va, vb)))
}

/// A value observed flowing into an actuator encode sink.
#[derive(Debug, Clone)]
struct SinkObs {
    file: usize,
    line: usize,
    val: AbsVal,
}

/// A `clamp(lo, hi)` site with its receiver and bound values.
#[derive(Debug, Clone)]
struct ClampObs {
    file: usize,
    line: usize,
    recv: AbsVal,
    lo: AbsVal,
    hi: AbsVal,
}

/// Per-evaluation context: the file the code under evaluation came from
/// (for observation attribution), the enclosing `impl` type, call depth.
#[derive(Clone)]
struct Ctx {
    file: usize,
    impl_type: Option<String>,
    depth: u32,
}

/// One file prepared for semantic analysis.
pub struct SemFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Whether R9 sink checks apply to this file.
    pub r9: bool,
    /// Whether R11 clamp checks apply to this file.
    pub r11: bool,
    /// The tokenized source (for snippets).
    pub src: SourceFile,
    /// The lowered IR.
    pub ir: FileIr,
}

impl SemFile {
    /// Lowers `src` and packages it for [`semantic_rules`].
    pub fn new(rel: String, src: SourceFile, r9: bool, r11: bool) -> Self {
        let ir = lower(&src);
        SemFile {
            rel,
            r9,
            r11,
            src,
            ir,
        }
    }
}

/// The whole-program abstract interpreter.
struct Analyzer<'a> {
    files: &'a [SemFile],
    /// `Type::name` (or bare name for free fns) → definitions.
    fn_by_qual: HashMap<String, Vec<(usize, usize)>>,
    /// Bare name → definitions.
    fn_by_name: HashMap<String, Vec<(usize, usize)>>,
    /// Const name (last segment) → `(file, const index)` definitions.
    const_defs: HashMap<String, Vec<(usize, usize)>>,
    const_cache: HashMap<String, Option<AbsVal>>,
    const_busy: HashSet<String>,
    /// Memoized ⊤-parameter summaries; `None` marks in-progress (cycle).
    summaries: HashMap<(usize, usize), Option<AbsVal>>,
    /// Functions currently being inlined (recursion guard).
    busy: HashSet<(usize, usize)>,
    /// When > 0, observations are suppressed (loop pre-fixpoint passes and
    /// const-initializer evaluation).
    muted: u32,
    sinks: Vec<SinkObs>,
    clamps: Vec<ClampObs>,
}

impl<'a> Analyzer<'a> {
    fn new(files: &'a [SemFile]) -> Self {
        let mut fn_by_qual: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        let mut fn_by_name: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        let mut const_defs: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.ir.fns.iter().enumerate() {
                fn_by_qual.entry(g.qual.clone()).or_default().push((fi, gi));
                fn_by_name.entry(g.name.clone()).or_default().push((fi, gi));
            }
            for (ci, c) in f.ir.consts.iter().enumerate() {
                const_defs.entry(c.name.clone()).or_default().push((fi, ci));
            }
        }
        Analyzer {
            files,
            fn_by_qual,
            fn_by_name,
            const_defs,
            const_cache: HashMap::new(),
            const_busy: HashSet::new(),
            summaries: HashMap::new(),
            busy: HashSet::new(),
            muted: 0,
            sinks: Vec::new(),
            clamps: Vec::new(),
        }
    }

    /// Analyzes every non-test function once (summaries are memoized, so
    /// functions reached earlier through calls are not re-walked).
    fn run(&mut self) {
        for fi in 0..self.files.len() {
            for gi in 0..self.files[fi].ir.fns.len() {
                if !self.files[fi].ir.fns[gi].is_test {
                    self.summary(fi, gi);
                }
            }
        }
    }

    /// The value of a named constant, evaluated lazily with a cycle guard.
    fn const_val(&mut self, name: &str) -> Option<AbsVal> {
        if let Some(v) = self.const_cache.get(name) {
            return v.clone();
        }
        let defs = self.const_defs.get(name)?;
        if defs.len() != 1 {
            return None;
        }
        let (fi, ci) = defs[0];
        if !self.const_busy.insert(name.to_string()) {
            return None;
        }
        let files = self.files;
        let expr = &files[fi].ir.consts[ci].expr;
        self.muted += 1;
        let mut env = Env::new();
        let ctx = Ctx {
            file: fi,
            impl_type: None,
            depth: 0,
        };
        let v = self.eval(expr, &mut env, &ctx);
        self.muted -= 1;
        self.const_busy.remove(name);
        let out = Some(v);
        self.const_cache.insert(name.to_string(), out.clone());
        out
    }

    /// A constant that resolves to a single point, with its def site.
    fn const_point(&mut self, name: &str) -> Option<(f64, usize, usize)> {
        let v = self.const_val(name)?;
        let n = v.as_num()?;
        if n.iv.lo.to_bits() != n.iv.hi.to_bits() {
            return None;
        }
        let point = n.iv.lo;
        let defs = self.const_defs.get(name)?;
        let (fi, ci) = *defs.first()?;
        let line = self.files[fi].ir.consts[ci].line;
        Some((point, fi, line))
    }

    /// ⊤-parameter summary of one function, memoized; cycles yield Opaque.
    fn summary(&mut self, fi: usize, gi: usize) -> AbsVal {
        let key = (fi, gi);
        if let Some(v) = self.summaries.get(&key) {
            return match v {
                Some(v) => v.clone(),
                None => AbsVal::Opaque,
            };
        }
        self.summaries.insert(key, None);
        let files = self.files;
        let g = &files[fi].ir.fns[gi];
        let mut env = Env::new();
        for p in &g.params {
            let v = if p == "self" {
                AbsVal::Opaque
            } else {
                AbsVal::Num(NumVal::top())
            };
            env.insert(p.clone(), v);
        }
        let ctx = Ctx {
            file: fi,
            impl_type: g.impl_type.clone(),
            depth: 0,
        };
        let mut v = self.eval(&g.body, &mut env, &ctx);
        if let Some(r) = env.get("%ret") {
            v = AbsVal::join(&v, r);
        }
        self.summaries.insert(key, Some(v.clone()));
        v
    }

    /// Calls a resolved function with actual argument values: inlines small
    /// bodies, falls back to the ⊤-parameter summary otherwise.
    fn call_fn(&mut self, fi: usize, gi: usize, argvals: Vec<AbsVal>, ctx: &Ctx) -> AbsVal {
        let key = (fi, gi);
        let files = self.files;
        let g = &files[fi].ir.fns[gi];
        let small = match &g.body {
            Expr::Block(stmts, _) => stmts.len() <= INLINE_STMTS,
            _ => true,
        };
        if small && ctx.depth < MAX_DEPTH && !self.busy.contains(&key) {
            self.busy.insert(key);
            let mut env = Env::new();
            for (i, p) in g.params.iter().enumerate() {
                let v = argvals.get(i).cloned().unwrap_or(AbsVal::Opaque);
                env.insert(p.clone(), v);
            }
            let nctx = Ctx {
                file: fi,
                impl_type: g.impl_type.clone(),
                depth: ctx.depth + 1,
            };
            let mut v = self.eval(&g.body, &mut env, &nctx);
            if let Some(r) = env.get("%ret") {
                v = AbsVal::join(&v, r);
            }
            self.busy.remove(&key);
            v
        } else {
            let v = self.summary(fi, gi);
            // A summary computed with ⊤ params cannot launder a possibly-NaN
            // argument into a provably-clean result.
            let arg_nan = argvals
                .iter()
                .any(|a| a.as_num().is_some_and(|n| n.maybe_nan));
            match (v, arg_nan) {
                (AbsVal::Num(mut n), true) => {
                    n.maybe_nan = true;
                    AbsVal::Num(n)
                }
                (v, _) => v,
            }
        }
    }

    /// Resolves a call path to a function definition, `Self`-substituted.
    fn resolve_call(&self, callee: &[String], ctx: &Ctx) -> Option<(usize, usize)> {
        let last = callee.last()?;
        if callee.len() >= 2 {
            let mut owner = callee[callee.len() - 2].clone();
            if owner == "Self" {
                owner = ctx.impl_type.clone()?;
            }
            let qual = format!("{owner}::{last}");
            if let Some(defs) = self.fn_by_qual.get(&qual) {
                if defs.len() == 1 {
                    return Some(defs[0]);
                }
            }
        }
        // Free function (its qual is its bare name), possibly spelled
        // behind a module path (`safety::envelope_clamp`).
        if let Some(defs) = self.fn_by_qual.get(last.as_str()) {
            if defs.len() == 1 {
                return Some(defs[0]);
            }
        }
        if callee.len() == 1 {
            if let Some(defs) = self.fn_by_name.get(last.as_str()) {
                if defs.len() == 1 {
                    return Some(defs[0]);
                }
            }
        }
        None
    }

    fn record_sink(&mut self, ctx: &Ctx, line: usize, val: AbsVal) {
        let r9 = self.files[ctx.file].r9;
        let encoderish = ctx
            .impl_type
            .as_deref()
            .is_some_and(|t| t == "CommandEncoder" || t == "Encoder");
        if self.muted == 0 && r9 && !encoderish {
            self.sinks.push(SinkObs {
                file: ctx.file,
                line,
                val,
            });
        }
    }

    fn eval(&mut self, e: &Expr, env: &mut Env, ctx: &Ctx) -> AbsVal {
        match e {
            Expr::Num(n) => AbsVal::Num(NumVal::point(*n)),
            Expr::Path(segs) => {
                let key = segs.join("::");
                if let Some(v) = env.get(&key) {
                    return v.clone();
                }
                match segs.last() {
                    Some(last) => self.const_val(last).unwrap_or(AbsVal::Opaque),
                    None => AbsVal::Opaque,
                }
            }
            Expr::Field(base, field) => {
                if let Some(place) = e.as_place() {
                    if let Some(v) = env.get(&place) {
                        return v.clone();
                    }
                }
                match self.eval(base, env, ctx) {
                    AbsVal::Struct(m) => m.get(field).cloned().unwrap_or(AbsVal::Opaque),
                    _ => AbsVal::Opaque,
                }
            }
            Expr::Unary(UnOp::Neg, inner) => match self.eval(inner, env, ctx) {
                AbsVal::Num(n) => AbsVal::Num(NumVal {
                    iv: n.iv.neg(),
                    maybe_nan: n.maybe_nan,
                    chain: n.chain,
                }),
                _ => AbsVal::Opaque,
            },
            Expr::Unary(UnOp::Not, _) => AbsVal::Opaque,
            Expr::Bin(op, a, b) => {
                let va = self.eval(a, env, ctx);
                let vb = self.eval(b, env, ctx);
                eval_bin(*op, &va, &vb)
            }
            Expr::Call { callee, args, line } => self.eval_call(callee, args, *line, env, ctx),
            Expr::Method {
                recv,
                name,
                args,
                line,
            } => self.eval_method(recv, name, args, *line, env, ctx),
            Expr::Struct { fields, base, .. } => {
                let mut m = match base {
                    Some(b) => match self.eval(b, env, ctx) {
                        AbsVal::Struct(m) => m,
                        _ => BTreeMap::new(),
                    },
                    None => BTreeMap::new(),
                };
                for (k, fe) in fields {
                    let v = self.eval(fe, env, ctx);
                    m.insert(k.clone(), v);
                }
                AbsVal::Struct(m)
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                // The condition is evaluated for its observations (an
                // encode sink or clamp can live inside it — e.g. `if
                // encoder.encode_into(&v).is_err()`); `refine` only reads
                // its comparison structure.
                let _ = self.eval(cond, env, ctx);
                let mut env_t = env.clone();
                let mut env_e = env.clone();
                self.refine(cond, true, &mut env_t, ctx);
                self.refine(cond, false, &mut env_e, ctx);
                let vt = self.eval(then_branch, &mut env_t, ctx);
                let ve = self.eval(else_branch, &mut env_e, ctx);
                *env = join_env(env_t, env_e);
                AbsVal::join(&vt, &ve)
            }
            Expr::Match(arms) => {
                if arms.is_empty() {
                    return AbsVal::Opaque;
                }
                let _ = self.eval(&arms[0], env, ctx);
                let mut out: Option<AbsVal> = None;
                let mut joined: Option<Env> = None;
                for arm in &arms[1..] {
                    let mut aenv = env.clone();
                    let v = self.eval(arm, &mut aenv, ctx);
                    out = Some(match out {
                        Some(prev) => AbsVal::join(&prev, &v),
                        None => v,
                    });
                    joined = Some(match joined {
                        Some(j) => join_env(j, aenv),
                        None => aenv,
                    });
                }
                if let Some(j) = joined {
                    *env = j;
                }
                out.unwrap_or(AbsVal::Opaque)
            }
            Expr::Block(stmts, tail) => self.exec_block(stmts, tail.as_deref(), env, ctx),
            Expr::Unknown => AbsVal::Opaque,
        }
    }

    fn eval_call(
        &mut self,
        callee: &[String],
        args: &[Expr],
        line: usize,
        env: &mut Env,
        ctx: &Ctx,
    ) -> AbsVal {
        let vals: Vec<AbsVal> = args.iter().map(|a| self.eval(a, env, ctx)).collect();
        let Some(last) = callee.last().cloned() else {
            return AbsVal::Opaque;
        };
        // UFCS / free-function spellings of the actuator sink.
        if last == "encode_into" || (last == "encode" && vals.len() == 1) {
            self.record_sink(ctx, line, vals.first().cloned().unwrap_or(AbsVal::Opaque));
        }
        // Newtype constructor `Self(x)`.
        if callee.len() == 1 && last == "Self" && vals.len() == 1 {
            return vals.into_iter().next().unwrap_or(AbsVal::Opaque);
        }
        if let Some((fi, gi)) = self.resolve_call(callee, ctx) {
            return self.call_fn(fi, gi, vals, ctx);
        }
        // Unit-newtype constructors generated by the `quantity!` macro are
        // invisible to the lowering; model them directly. `new` here means
        // a 1-arg newtype wrapper (`Seconds::new`) — multi-field `new`s in
        // ordinary impls resolve above before this table is consulted.
        if vals.len() == 1 {
            let scale = match last.as_str() {
                "from_mps2" | "from_mps" | "from_radians" | "meters" | "new" | "Some" | "Ok" => {
                    Some(1.0)
                }
                "from_mph" => Some(MPH_TO_MPS),
                "from_degrees" => Some(std::f64::consts::PI / 180.0),
                _ => None,
            };
            if let Some(s) = scale {
                let v = vals.into_iter().next().unwrap_or(AbsVal::Opaque);
                return match v {
                    AbsVal::Num(n) => AbsVal::Num(NumVal {
                        iv: n.iv.mul(Interval::point(s)),
                        maybe_nan: n.maybe_nan,
                        chain: n.chain,
                    }),
                    other => other,
                };
            }
        }
        AbsVal::Opaque
    }

    fn eval_method(
        &mut self,
        recv_e: &Expr,
        name: &str,
        args: &[Expr],
        line: usize,
        env: &mut Env,
        ctx: &Ctx,
    ) -> AbsVal {
        let recv = self.eval(recv_e, env, ctx);
        let vals: Vec<AbsVal> = args.iter().map(|a| self.eval(a, env, ctx)).collect();

        if name == "encode_into" || (name == "encode" && vals.len() == 1) {
            self.record_sink(ctx, line, vals.first().cloned().unwrap_or(AbsVal::Opaque));
        }

        let rnum = recv.as_num().cloned();
        match (name, vals.len()) {
            ("clamp", 2) => {
                if self.muted == 0 && self.files[ctx.file].r11 {
                    self.clamps.push(ClampObs {
                        file: ctx.file,
                        line,
                        recv: recv.clone(),
                        lo: vals[0].clone(),
                        hi: vals[1].clone(),
                    });
                }
                let (lo, hi) = match (vals[0].as_num(), vals[1].as_num()) {
                    (Some(lo), Some(hi)) => (lo.clone(), hi.clone()),
                    _ => return AbsVal::Opaque,
                };
                if lo.iv.lo > hi.iv.hi {
                    // Inverted bounds: `f64::clamp` panics; nothing flows on.
                    return AbsVal::Opaque;
                }
                let base = rnum.unwrap_or_else(NumVal::top);
                let iv = base.iv.clamp(lo.iv, hi.iv);
                let mut out = NumVal {
                    iv,
                    // f64::clamp(NaN, ..) is NaN — the clamp does not launder it.
                    maybe_nan: base.maybe_nan || lo.maybe_nan || hi.maybe_nan,
                    chain: base.chain,
                };
                out.push(format!("clamp@{line} → [{}, {}]", iv.lo, iv.hi));
                AbsVal::Num(out)
            }
            ("min", 1) | ("max", 1) => {
                let (a, b) = match (rnum, vals[0].as_num()) {
                    (Some(a), Some(b)) => (a, b.clone()),
                    _ => return AbsVal::Opaque,
                };
                let mut iv = if name == "min" {
                    a.iv.min(b.iv)
                } else {
                    a.iv.max(b.iv)
                };
                // f64::min/max return the *other* operand when one is NaN,
                // so a clean operand both clears the flag and re-admits its
                // own range into the result.
                if a.maybe_nan {
                    iv = iv.join(b.iv);
                }
                if b.maybe_nan {
                    iv = iv.join(a.iv);
                }
                AbsVal::Num(NumVal {
                    iv,
                    maybe_nan: a.maybe_nan && b.maybe_nan,
                    chain: merge_chain(&a.chain, &b.chain),
                })
            }
            ("abs", 0) => num_map(rnum, |n| (n.iv.abs(), n.maybe_nan, None)),
            ("sqrt", 0) => num_map(rnum, |n| {
                let may_neg = n.iv.lo < 0.0;
                (
                    n.iv.sqrt(),
                    n.maybe_nan || may_neg,
                    may_neg.then(|| "sqrt of a possibly-negative value".to_string()),
                )
            }),
            ("asin", 0) | ("acos", 0) => num_map(rnum, |n| {
                let out_dom = n.iv.lo < -1.0 || n.iv.hi > 1.0;
                let half_pi = std::f64::consts::FRAC_PI_2;
                let iv = if name == "asin" {
                    Interval::bounded_map(-half_pi, half_pi)
                } else {
                    Interval::bounded_map(0.0, std::f64::consts::PI)
                };
                (
                    iv,
                    n.maybe_nan || out_dom,
                    out_dom.then(|| format!("{name} outside [-1, 1]")),
                )
            }),
            ("atan", 0) => num_map(rnum, |n| {
                let half_pi = std::f64::consts::FRAC_PI_2;
                (Interval::bounded_map(-half_pi, half_pi), n.maybe_nan, None)
            }),
            ("powi", 1) => {
                let (a, b) = match (rnum, vals[0].as_num()) {
                    (Some(a), Some(b)) => (a, b.clone()),
                    _ => return AbsVal::Opaque,
                };
                let k = b.iv.lo;
                let iv = if b.iv.lo.to_bits() == b.iv.hi.to_bits()
                    && k.fract().to_bits() << 1 == 0
                    && (0.0..=6.0).contains(&k)
                {
                    let mut iv = Interval::point(1.0);
                    let mut i: i32 = 0;
                    while f64::from(i) < k {
                        iv = iv.mul(a.iv);
                        i += 1;
                    }
                    iv
                } else {
                    TOP
                };
                AbsVal::Num(NumVal {
                    iv,
                    maybe_nan: a.maybe_nan,
                    chain: a.chain,
                })
            }
            ("powf", 1) => num_map(rnum, |n| {
                let may_neg = n.iv.lo < 0.0;
                (
                    TOP,
                    n.maybe_nan || may_neg,
                    may_neg.then(|| "powf with a possibly-negative base".to_string()),
                )
            }),
            ("floor", 0) | ("ceil", 0) | ("round", 0) | ("trunc", 0) => num_map(rnum, |n| {
                (n.iv.add(Interval::new(-1.0, 1.0)), n.maybe_nan, None)
            }),
            ("signum", 0) => num_map(rnum, |n| (Interval::new(-1.0, 1.0), n.maybe_nan, None)),
            ("recip", 0) => num_map(rnum, |n| {
                let zero = n.iv.contains(0.0);
                (
                    Interval::point(1.0).div(n.iv),
                    n.maybe_nan,
                    zero.then(|| "recip of a zero-straddling value".to_string()),
                )
            }),
            ("to_radians", 0) => scale_map(rnum, std::f64::consts::PI / 180.0),
            ("to_degrees", 0) | ("degrees", 0) => scale_map(rnum, 180.0 / std::f64::consts::PI),
            ("mph", 0) => scale_map(rnum, 1.0 / MPH_TO_MPS),
            ("mps" | "mps2" | "radians" | "secs" | "raw" | "meters", 0) => match rnum {
                Some(n) => AbsVal::Num(n),
                None => AbsVal::Opaque,
            },
            _ => {
                // User-defined method: unique by name, and an inherent
                // method (`self` receiver) somewhere in the program.
                if let Some(defs) = self.fn_by_name.get(name) {
                    if defs.len() == 1 {
                        let (fi, gi) = defs[0];
                        let g = &self.files[fi].ir.fns[gi];
                        if g.impl_type.is_some() && g.params.first().is_some_and(|p| p == "self") {
                            let mut argvals = Vec::with_capacity(vals.len() + 1);
                            argvals.push(recv);
                            argvals.extend(vals);
                            return self.call_fn(fi, gi, argvals, ctx);
                        }
                    }
                }
                AbsVal::Opaque
            }
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        tail: Option<&Expr>,
        env: &mut Env,
        ctx: &Ctx,
    ) -> AbsVal {
        for s in stmts {
            match s {
                Stmt::Assign {
                    dst, expr, weak, ..
                } => {
                    let v = self.eval(expr, env, ctx);
                    let v = if *weak {
                        match env.get(dst) {
                            Some(old) => AbsVal::join(old, &v),
                            None => v,
                        }
                    } else {
                        v
                    };
                    env.insert(dst.clone(), v);
                }
                Stmt::Eval { expr, .. } => {
                    let _ = self.eval(expr, env, ctx);
                }
                Stmt::Loop { body, .. } => {
                    self.exec_loop(body, env, ctx);
                }
            }
        }
        match tail {
            Some(t) => self.eval(t, env, ctx),
            None => AbsVal::Opaque,
        }
    }

    /// Runs a loop body to an environment fixpoint with widening, then one
    /// final unmuted pass at the fixpoint so observations see stable values.
    fn exec_loop(&mut self, body: &Expr, env: &mut Env, ctx: &Ctx) {
        let mut prev = env.clone();
        self.muted += 1;
        for _ in 0..MAX_LOOP_ITERS {
            let mut e = prev.clone();
            let _ = self.eval(body, &mut e, ctx);
            let joined = join_env(prev.clone(), e);
            let widened = widen_env(&prev, joined);
            if env_same(&widened, &prev) {
                break;
            }
            prev = widened;
        }
        self.muted -= 1;
        let mut e = prev.clone();
        let _ = self.eval(body, &mut e, ctx);
        *env = prev;
    }

    /// Refines `env` under `cond == positive`. Positive ordered comparisons
    /// additionally prove the refined operand is not NaN.
    fn refine(&mut self, cond: &Expr, positive: bool, env: &mut Env, ctx: &Ctx) {
        match cond {
            Expr::Unary(UnOp::Not, inner) => self.refine(inner, !positive, env, ctx),
            Expr::Bin(BinOp::And, a, b) if positive => {
                self.refine(a, true, env, ctx);
                self.refine(b, true, env, ctx);
            }
            Expr::Bin(BinOp::Or, a, b) if !positive => {
                self.refine(a, false, env, ctx);
                self.refine(b, false, env, ctx);
            }
            Expr::Bin(op, lhs, rhs) => {
                let cmp = match op {
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => *op,
                    _ => return,
                };
                self.refine_cmp(cmp, lhs, rhs, positive, env, ctx);
                self.refine_cmp(flip(cmp), rhs, lhs, positive, env, ctx);
            }
            _ => {}
        }
    }

    /// Refines the place `lhs` against the value of `rhs` under
    /// `lhs <op> rhs == positive`.
    fn refine_cmp(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        positive: bool,
        env: &mut Env,
        ctx: &Ctx,
    ) {
        let Some(place) = lhs.as_place() else { return };
        if place.contains("::") {
            return; // consts are not refinable places
        }
        let bound = match self.eval(rhs, env, ctx) {
            AbsVal::Num(n) => n,
            _ => return,
        };
        let op = if positive { op } else { negate(op) };
        // lhs <op> rhs holds for the *actual* rhs, which lies in bound.iv:
        // upper-bounding ops use the largest possible rhs, lower-bounding
        // ops the smallest — the sound direction either way.
        let half = match op {
            BinOp::Lt => Interval::new(f64::NEG_INFINITY, next_down(bound.iv.hi)),
            BinOp::Le => Interval::new(f64::NEG_INFINITY, bound.iv.hi),
            BinOp::Gt => Interval::new(next_up(bound.iv.lo), f64::INFINITY),
            BinOp::Ge => Interval::new(bound.iv.lo, f64::INFINITY),
            BinOp::Eq => bound.iv,
            _ => return, // Ne carries no interval information
        };
        let cur = match env.get(&place) {
            Some(AbsVal::Num(n)) => n.clone(),
            Some(_) => return,
            None => NumVal::top(),
        };
        let iv = cur.iv.meet(half).unwrap_or(cur.iv);
        // A true ordered comparison (or a true float equality) is only
        // possible when the operand is an ordinary number.
        let maybe_nan = if positive { false } else { cur.maybe_nan };
        env.insert(
            place,
            AbsVal::Num(NumVal {
                iv,
                maybe_nan,
                chain: cur.chain,
            }),
        );
    }
}

/// Mirrors a comparison so the place can sit on either side.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// The comparison that holds when `op` is false (NaN cases aside — the
/// caller keeps `maybe_nan` on negated refinements for exactly that).
fn negate(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Arithmetic transfer function for a binary operation on abstract values.
fn eval_bin(op: BinOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    let (x, y) = match (a.as_num(), b.as_num()) {
        (Some(x), Some(y)) => (x, y),
        _ => return AbsVal::Opaque,
    };
    let mut fresh_nan = false;
    let iv = match op {
        BinOp::Add => x.iv.add(y.iv),
        BinOp::Sub => x.iv.sub(y.iv),
        BinOp::Mul => x.iv.mul(y.iv),
        BinOp::Div => {
            if (x.iv.contains(0.0) && y.iv.contains(0.0))
                || (!x.iv.is_bounded() && !y.iv.is_bounded())
            {
                fresh_nan = true;
            }
            x.iv.div(y.iv)
        }
        BinOp::Rem => {
            if y.iv.contains(0.0) {
                fresh_nan = true;
            }
            TOP
        }
        // Comparisons and boolean connectives only matter as guards, where
        // `refine` interprets them structurally.
        _ => return AbsVal::Opaque,
    };
    let mut chain = merge_chain(&x.chain, &y.chain);
    if fresh_nan && chain.len() < MAX_CHAIN {
        let what = match op {
            BinOp::Div => "division with 0/0 or unbounded operands",
            _ => "remainder with a zero-straddling divisor",
        };
        chain.push(what.to_string());
    }
    AbsVal::Num(NumVal {
        iv,
        maybe_nan: x.maybe_nan || y.maybe_nan || fresh_nan,
        chain,
    })
}

/// Applies a numeric transfer function, with an optional provenance note.
fn num_map(
    recv: Option<NumVal>,
    f: impl FnOnce(&NumVal) -> (Interval, bool, Option<String>),
) -> AbsVal {
    match recv {
        Some(n) => {
            let (iv, nan, note) = f(&n);
            let mut out = NumVal {
                iv,
                maybe_nan: nan,
                chain: n.chain,
            };
            if let Some(note) = note {
                out.push(note);
            }
            AbsVal::Num(out)
        }
        None => AbsVal::Opaque,
    }
}

/// Multiplies a numeric receiver by a constant (unit conversions).
fn scale_map(recv: Option<NumVal>, s: f64) -> AbsVal {
    num_map(recv, |n| (n.iv.mul(Interval::point(s)), n.maybe_nan, None))
}

/// Physical limits R9 checks against, resolved from the canonical const
/// table with fixture-friendly fallbacks.
struct PhysLimits {
    accel_min: f64,
    accel_max: f64,
    steer_rad: f64,
}

/// Runs the semantic layer over a set of prepared files and returns the
/// R9/R10/R11 findings, deterministically ordered.
pub fn semantic_rules(files: &[SemFile]) -> Vec<Diagnostic> {
    let mut a = Analyzer::new(files);
    a.run();

    let phys = PhysLimits {
        accel_min: a
            .const_point("PHYS_BRAKE_MIN_MPS2")
            .map_or(FALLBACK_ACCEL_MIN, |(v, _, _)| v),
        accel_max: a
            .const_point("PHYS_ACCEL_MAX_MPS2")
            .map_or(FALLBACK_ACCEL_MAX, |(v, _, _)| v),
        steer_rad: a
            .const_point("PHYS_STEER_MAX_DEG")
            .map_or(FALLBACK_STEER_DEG, |(v, _, _)| v)
            .to_radians(),
    };

    let mut diags = Vec::new();

    // R9 + the NaN half of R11: deduped sink observations.
    let mut sinks: BTreeMap<(usize, usize), AbsVal> = BTreeMap::new();
    for s in std::mem::take(&mut a.sinks) {
        sinks
            .entry((s.file, s.line))
            .and_modify(|v| *v = AbsVal::join(v, &s.val))
            .or_insert(s.val);
    }
    for (&(fi, line), val) in &sinks {
        r9_check(files, fi, line, val, &phys, &mut diags);
    }

    // R11: clamp observations.
    let mut clamps: BTreeMap<(usize, usize), ClampObs> = BTreeMap::new();
    for c in std::mem::take(&mut a.clamps) {
        clamps
            .entry((c.file, c.line))
            .and_modify(|prev| {
                prev.recv = AbsVal::join(&prev.recv, &c.recv);
                prev.lo = AbsVal::join(&prev.lo, &c.lo);
                prev.hi = AbsVal::join(&prev.hi, &c.hi);
            })
            .or_insert(c);
    }
    for (&(fi, line), c) in &clamps {
        r11_clamp_check(files, fi, line, c, &mut diags);
    }

    // R10: cross-constant consistency.
    r10_checks(&mut a, files, &mut diags);

    diags.sort_by(|x, y| {
        (x.file.as_str(), x.line, x.rule.id()).cmp(&(y.file.as_str(), y.line, y.rule.id()))
    });
    diags
}

fn snippet_at(files: &[SemFile], fi: usize, line: usize) -> String {
    files[fi]
        .src
        .lines
        .get(line.saturating_sub(1))
        .map(|l| l.raw.trim().to_string())
        .unwrap_or_default()
}

fn sem_diag(
    rule: Rule,
    severity: Severity,
    files: &[SemFile],
    fi: usize,
    line: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity,
        file: files[fi].rel.clone(),
        line,
        snippet: snippet_at(files, fi, line),
        message,
    }
}

/// R9 check for one numeric component of a sink value.
fn r9_num(
    files: &[SemFile],
    fi: usize,
    line: usize,
    n: &NumVal,
    what: &str,
    (lo, hi): (f64, f64),
    diags: &mut Vec<Diagnostic>,
) {
    if n.maybe_nan {
        diags.push(sem_diag(
            Rule::ClampHygiene,
            Severity::Error,
            files,
            fi,
            line,
            format!(
                "{what} flowing into the actuator encoder may be NaN: abstract \
                 value {} — NaN passes every clamp, so guard the producing \
                 operation (positive ordered comparison, or min/max with a \
                 clean operand)",
                n.describe()
            ),
        ));
        return;
    }
    if !n.iv.within(lo, hi) {
        diags.push(sem_diag(
            Rule::EnvelopeSoundness,
            Severity::Error,
            files,
            fi,
            line,
            format!(
                "cannot prove {what} stays inside the physical limits \
                 [{lo}, {hi}] at the actuator encoder: abstract value {}",
                n.describe()
            ),
        ));
    }
}

fn r9_check(
    files: &[SemFile],
    fi: usize,
    line: usize,
    val: &AbsVal,
    phys: &PhysLimits,
    diags: &mut Vec<Diagnostic>,
) {
    let untracked = |field: &str| {
        format!(
            "cannot prove `{field}` is bounded at the actuator encoder: the \
             field's value is not numerically tracked on this path"
        )
    };
    match val {
        AbsVal::Num(n) => r9_num(
            files,
            fi,
            line,
            n,
            "value",
            (phys.accel_min, phys.accel_max),
            diags,
        ),
        AbsVal::Struct(m) => {
            match m.get("accel").and_then(AbsVal::as_num) {
                Some(n) => r9_num(
                    files,
                    fi,
                    line,
                    n,
                    "`accel`",
                    (phys.accel_min, phys.accel_max),
                    diags,
                ),
                None => diags.push(sem_diag(
                    Rule::EnvelopeSoundness,
                    Severity::Error,
                    files,
                    fi,
                    line,
                    untracked("accel"),
                )),
            }
            match m.get("steer").and_then(AbsVal::as_num) {
                Some(n) => r9_num(
                    files,
                    fi,
                    line,
                    n,
                    "`steer` (radians)",
                    (-phys.steer_rad, phys.steer_rad),
                    diags,
                ),
                None => diags.push(sem_diag(
                    Rule::EnvelopeSoundness,
                    Severity::Error,
                    files,
                    fi,
                    line,
                    untracked("steer"),
                )),
            }
        }
        AbsVal::Opaque => diags.push(sem_diag(
            Rule::EnvelopeSoundness,
            Severity::Error,
            files,
            fi,
            line,
            "cannot prove the encoded command is bounded: the value reaching \
             the actuator encoder is not numerically tracked (route it \
             through `safety::envelope_clamp` or an equivalent literal clamp)"
                .to_string(),
        )),
    }
}

fn r11_clamp_check(
    files: &[SemFile],
    fi: usize,
    line: usize,
    c: &ClampObs,
    diags: &mut Vec<Diagnostic>,
) {
    let (Some(lo), Some(hi)) = (c.lo.as_num(), c.hi.as_num()) else {
        return;
    };
    if lo.iv.lo > hi.iv.hi {
        diags.push(sem_diag(
            Rule::ClampHygiene,
            Severity::Error,
            files,
            fi,
            line,
            format!(
                "inverted clamp bounds: lower bound {} exceeds upper bound {} \
                 — `f64::clamp` panics at runtime on this pair",
                lo.describe(),
                hi.describe()
            ),
        ));
        return;
    }
    if let Some(r) = c.recv.as_num() {
        if !r.iv.is_top() && r.iv.is_bounded() && r.iv.lo >= lo.iv.hi && r.iv.hi <= hi.iv.lo {
            diags.push(sem_diag(
                Rule::ClampHygiene,
                Severity::Warning,
                files,
                fi,
                line,
                format!(
                    "dead clamp: the receiver is already proven inside \
                     [{}, {}] (abstract value {}), so this clamp can never \
                     act — tighten the bounds or delete it so readers are not \
                     misled about where enforcement happens",
                    lo.iv.hi,
                    hi.iv.lo,
                    r.describe()
                ),
            ));
        }
    }
}

/// The R10 cross-constant checks. Each check names the constants it needs
/// and is silently skipped when any is absent or non-point, so the rule
/// composes with fixtures that define only a subset.
fn r10_checks(a: &mut Analyzer<'_>, files: &[SemFile], diags: &mut Vec<Diagnostic>) {
    type Pred = fn(&[f64]) -> bool;
    let checks: &[(&str, &[&str], Pred, &str)] = &[
        (
            "GATE_MAX_SPEED_JUMP_MPS",
            &["SW_ACCEL_MAX_MPS2", "TICK_SECONDS"],
            |v| v[0] > v[1] * v[2],
            "the plausibility gate's per-tick speed allowance must exceed the \
             speed change the software envelope lets the controller command \
             in one tick (SW_ACCEL_MAX_MPS2 × TICK_SECONDS), else legitimate \
             control authority is rejected as implausible",
        ),
        (
            "GATE_MAX_SPEED_JUMP_MPS",
            &["SW_BRAKE_MIN_MPS2", "TICK_SECONDS"],
            |v| v[0] > -v[1] * v[2],
            "the plausibility gate's per-tick speed allowance must exceed the \
             per-tick speed change of a maximal envelope brake \
             (−SW_BRAKE_MIN_MPS2 × TICK_SECONDS)",
        ),
        (
            "STALE_AFTER_TICKS",
            &["DEGRADE_AFTER_TICKS"],
            |v| v[0] < v[1],
            "staleness must be detected before the degradation ladder \
             escalates (STALE_AFTER_TICKS < DEGRADE_AFTER_TICKS), else the \
             ladder escalates on data it never classified as stale",
        ),
        (
            "DEGRADE_AFTER_TICKS",
            &["FAILSAFE_AFTER_TICKS"],
            |v| v[0] < v[1],
            "the degradation ladder must pass through the degraded rungs \
             before fail-safe (DEGRADE_AFTER_TICKS < FAILSAFE_AFTER_TICKS)",
        ),
        (
            "GATE_REACQUIRE_AFTER",
            &["DEGRADE_AFTER_TICKS"],
            |v| v[0] < v[1],
            "a bound-violating stream must re-anchor before the degradation \
             ladder escalates (GATE_REACQUIRE_AFTER < DEGRADE_AFTER_TICKS), \
             else a legitimate discontinuity degrades the stack",
        ),
        (
            "STRICT_ACCEL_MAX_MPS2",
            &["SW_ACCEL_MAX_MPS2", "PHYS_ACCEL_MAX_MPS2"],
            |v| v[0] <= v[1] && v[1] <= v[2],
            "acceleration envelopes must nest: strict ≤ software ≤ physical",
        ),
        (
            "STRICT_BRAKE_MIN_MPS2",
            &["SW_BRAKE_MIN_MPS2", "PHYS_BRAKE_MIN_MPS2"],
            |v| v[0] >= v[1] && v[1] >= v[2],
            "braking envelopes must nest: strict ≥ software ≥ physical (all \
             negative)",
        ),
        (
            "STRICT_STEER_MAX_DEG",
            &["SW_STEER_MAX_DEG", "PHYS_STEER_MAX_DEG"],
            |v| v[0] <= v[1] && v[1] <= v[2],
            "steering envelopes must nest: strict ≤ software ≤ physical",
        ),
        (
            "STRICT_OVERSPEED_FACTOR",
            &["SW_OVERSPEED_FACTOR"],
            |v| 1.0 < v[0] && v[0] <= v[1],
            "overspeed factors must satisfy 1 < strict ≤ software — a factor \
             at or below 1 rejects the cruise set-point itself",
        ),
        (
            "FAILSAFE_BRAKE_MPS2",
            &["SW_BRAKE_MIN_MPS2", "GENTLE_BRAKE_MPS2"],
            |v| v[1] <= v[0] && v[0] <= v[2] && v[2] < 0.0,
            "controlled-stop decelerations must order SW_BRAKE_MIN ≤ \
             FAILSAFE_BRAKE ≤ GENTLE_BRAKE < 0, so the stop itself never \
             violates the envelope it is enforcing",
        ),
        (
            "IDS_MISS_AFTER",
            &["IDS_TIMING_THRESHOLD", "DEGRADE_AFTER_TICKS"],
            |v| v[0] + v[1] < v[2],
            "the CAN IDS must be able to raise a timing alert before the \
             degradation ladder escalates (IDS_MISS_AFTER + \
             IDS_TIMING_THRESHOLD < DEGRADE_AFTER_TICKS)",
        ),
    ];

    for (anchor, others, pred, msg) in checks {
        let Some((v0, fi, line)) = a.const_point(anchor) else {
            continue;
        };
        let mut vals = vec![v0];
        let mut resolved = true;
        for name in *others {
            match a.const_point(name) {
                Some((v, _, _)) => vals.push(v),
                None => {
                    resolved = false;
                    break;
                }
            }
        }
        if resolved && !pred(&vals) {
            diags.push(sem_diag(
                Rule::ThresholdConsistency,
                Severity::Error,
                files,
                fi,
                line,
                format!("{anchor} = {v0} is inconsistent: {msg}"),
            ));
        }
    }

    // Config constructors must reproduce the canonical constants exactly.
    let struct_checks: &[(&str, &[(&str, &str)])] = &[
        (
            "GateConfig::enforcing",
            &[
                ("innovation_sigma", "GATE_INNOVATION_SIGMA"),
                ("max_speed_jump", "GATE_MAX_SPEED_JUMP_MPS"),
                ("max_dist_jump", "GATE_MAX_DIST_JUMP_M"),
                ("max_lead_speed_jump", "GATE_MAX_LEAD_SPEED_JUMP_MPS"),
                ("max_offset_jump", "GATE_MAX_OFFSET_JUMP_M"),
                ("stuck_after", "GATE_STUCK_AFTER"),
                ("reacquire_after", "GATE_REACQUIRE_AFTER"),
                ("min_moving_speed", "GATE_MIN_MOVING_SPEED_MPS"),
                ("elapsed_cap", "GATE_ELAPSED_CAP"),
            ],
        ),
        (
            "IdsConfig::default",
            &[
                ("miss_after", "IDS_MISS_AFTER"),
                ("timing_threshold", "IDS_TIMING_THRESHOLD"),
                ("counter_threshold", "IDS_COUNTER_THRESHOLD"),
                ("checksum_threshold", "IDS_CHECKSUM_THRESHOLD"),
            ],
        ),
    ];
    for (qual, fields) in struct_checks {
        let Some(defs) = a.fn_by_qual.get(*qual).cloned() else {
            continue;
        };
        if defs.len() != 1 {
            continue;
        }
        let (fi, gi) = defs[0];
        let line = a.files[fi].ir.fns[gi].line;
        let AbsVal::Struct(m) = a.summary(fi, gi) else {
            continue;
        };
        for (field, cname) in *fields {
            let Some((want, _, _)) = a.const_point(cname) else {
                continue;
            };
            let Some(got) = m.get(*field).and_then(AbsVal::as_num) else {
                continue;
            };
            if got.iv.lo.to_bits() != got.iv.hi.to_bits() || got.iv.lo.to_bits() != want.to_bits()
            {
                diags.push(sem_diag(
                    Rule::ThresholdConsistency,
                    Severity::Error,
                    files,
                    fi,
                    line,
                    format!(
                        "{qual} sets `{field}` to {} but the canonical \
                         constant {cname} is {want} — the runtime config has \
                         drifted from the declared limit",
                        got.describe()
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    /// Tokenizes `src` as a fixture file with R9 and R11 in scope and runs
    /// the semantic layer over it alone.
    fn run(src: &str) -> Vec<Diagnostic> {
        let sf = tokenize(src);
        semantic_rules(&[SemFile::new("fixture.rs".to_string(), sf, true, true)])
    }

    fn rule_ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn clamped_sink_is_provable() {
        let diags = run(
            "fn drive(enc: f64, x: f64) {\n\
                 let v = x.clamp(-4.0, 2.4);\n\
                 enc.encode_into(&v);\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn raw_parameter_at_sink_is_unprovable() {
        let diags = run(
            "fn drive(enc: f64, x: f64) {\n\
                 enc.encode_into(&x);\n\
             }\n",
        );
        assert_eq!(rule_ids(&diags), ["R9"], "{diags:?}");
        assert!(diags[0].message.contains("cannot prove"), "{diags:?}");
    }

    #[test]
    fn guarded_division_is_clean() {
        let diags = run(
            "fn drive(enc: f64, a: f64, gap_err: f64) {\n\
                 let v = if gap_err > 0.0 {\n\
                     (a.clamp(0.0, 1.0) / (2.0 * gap_err)).clamp(-4.0, 2.0)\n\
                 } else {\n\
                     0.0\n\
                 };\n\
                 enc.encode_into(&v);\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unguarded_division_may_be_nan_at_sink() {
        let diags = run(
            "fn drive(enc: f64, a: f64, gap_err: f64) {\n\
                 let v = (a.clamp(0.0, 1.0) / (2.0 * gap_err)).clamp(-4.0, 2.0);\n\
                 enc.encode_into(&v);\n\
             }\n",
        );
        assert_eq!(rule_ids(&diags), ["R11"], "{diags:?}");
        assert!(diags[0].message.contains("NaN"), "{diags:?}");
    }

    #[test]
    fn min_max_launder_nan() {
        let diags = run(
            "fn drive(enc: f64, x: f64, y: f64) {\n\
                 let v = (x / y).min(2.0).max(-4.0);\n\
                 enc.encode_into(&v);\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dead_clamp_is_flagged() {
        let diags = run(
            "fn narrow(x: f64) -> f64 {\n\
                 let v = x.clamp(0.0, 1.0);\n\
                 v.clamp(-5.0, 5.0)\n\
             }\n",
        );
        assert_eq!(rule_ids(&diags), ["R11"], "{diags:?}");
        assert!(matches!(diags[0].severity, Severity::Warning), "{diags:?}");
        assert!(diags[0].message.contains("dead clamp"), "{diags:?}");
    }

    #[test]
    fn inverted_clamp_is_flagged() {
        let diags = run(
            "fn bad(x: f64) -> f64 {\n\
                 x.clamp(2.0, -2.0)\n\
             }\n",
        );
        assert_eq!(rule_ids(&diags), ["R11"], "{diags:?}");
        assert!(matches!(diags[0].severity, Severity::Error), "{diags:?}");
        assert!(diags[0].message.contains("inverted"), "{diags:?}");
    }

    #[test]
    fn loop_counter_widens_and_fails_r9() {
        let diags = run(
            "fn drive(enc: f64) {\n\
                 let mut v = 0.0;\n\
                 let mut i = 0.0;\n\
                 while i < 10.0 {\n\
                     v = v + 1.0;\n\
                     i = i + 1.0;\n\
                 }\n\
                 enc.encode_into(&v);\n\
             }\n",
        );
        assert_eq!(rule_ids(&diags), ["R9"], "{diags:?}");
        assert!(diags[0].message.contains("widened"), "{diags:?}");
    }

    #[test]
    fn inconsistent_gate_threshold_fails_r10() {
        let diags = run(
            "const GATE_MAX_SPEED_JUMP_MPS: f64 = 0.001;\n\
             const SW_ACCEL_MAX_MPS2: f64 = 2.4;\n\
             const TICK_SECONDS: f64 = 0.01;\n",
        );
        assert_eq!(rule_ids(&diags), ["R10"], "{diags:?}");
        assert!(
            diags[0].message.contains("GATE_MAX_SPEED_JUMP_MPS"),
            "{diags:?}"
        );
    }

    #[test]
    fn config_constructor_drift_fails_r10() {
        let diags = run(
            "const GATE_MAX_SPEED_JUMP_MPS: f64 = 1.0;\n\
             impl GateConfig {\n\
                 fn enforcing() -> Self {\n\
                     Self { max_speed_jump: 2.0 }\n\
                 }\n\
             }\n",
        );
        assert_eq!(rule_ids(&diags), ["R10"], "{diags:?}");
        assert!(diags[0].message.contains("drifted"), "{diags:?}");
    }

    #[test]
    fn envelope_clamp_proves_struct_sink() {
        // Mirror of the production shape: a control struct routed through a
        // free-function envelope clamp before the encoder.
        let diags = run(
            "const SW_ACCEL_MAX_MPS2: f64 = 2.4;\n\
             const SW_BRAKE_MIN_MPS2: f64 = -4.0;\n\
             const SW_STEER_MAX_DEG: f64 = 0.5;\n\
             fn envelope_clamp(c: CarControl) -> CarControl {\n\
                 CarControl {\n\
                     accel: c.accel.clamp(SW_BRAKE_MIN_MPS2, SW_ACCEL_MAX_MPS2),\n\
                     steer: c.steer.clamp(-SW_STEER_MAX_DEG.to_radians(), SW_STEER_MAX_DEG.to_radians()),\n\
                 }\n\
             }\n\
             fn drive(enc: f64, accel: f64, steer: f64) {\n\
                 let control = CarControl { accel: accel, steer: steer };\n\
                 let control = envelope_clamp(control);\n\
                 enc.encode_into(&control);\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
