//! The closed-interval abstract domain for the semantic rules (R9–R11).
//!
//! A value is abstracted as `[lo, hi] ⊆ ℝ ∪ {±∞}` plus a `maybe_nan` flag
//! tracked separately (NaN is not a point on the number line; folding it
//! into the interval would destroy every bound). The domain is
//! deliberately small: join (convex hull), standard widening to ±∞, and
//! transfer functions for exactly the operations that appear on actuator
//! paths — arithmetic, `clamp`/`min`/`max`/`abs`, and the NaN-capable
//! trio `/`, `sqrt`, `asin`/`acos`.
//!
//! Two soundness conventions worth spelling out:
//!
//! * **Unknown ≠ NaN.** A value we know nothing about is `TOP` with
//!   `maybe_nan = false`. Only operations that can *create* a NaN set the
//!   flag; `min`/`max` clear it when the other operand is clean (Rust's
//!   `f64::min`/`max` return the non-NaN operand), and `clamp` keeps it
//!   (`f64::clamp` returns NaN for NaN input). This keeps the flag a
//!   provenance trace of actual NaN-producing operations rather than a
//!   universal contaminant.
//! * **Strict guards refine to the next float.** For a runtime fact
//!   `x > c` the refined bound is [`next_up`]`(c)`, which is exact for
//!   `f64` — there is no float strictly between `c` and `next_up(c)`.
//!   This is what lets `a / (2.0 * gap_err)` under a `gap_err > 0.0`
//!   guard prove its denominator never contains zero.

/// A closed interval `[lo, hi]`, possibly unbounded. Invariant: `lo <= hi`
/// and neither bound is NaN. `TOP` is `[-∞, +∞]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-∞`).
    pub lo: f64,
    /// Upper bound (may be `+∞`).
    pub hi: f64,
}

/// The unbounded interval.
pub const TOP: Interval = Interval {
    lo: f64::NEG_INFINITY,
    hi: f64::INFINITY,
};

// The arithmetic methods intentionally shadow the `std::ops` trait names:
// interval transfer functions are not ring operations (no inverses, widening
// at the bounds), and explicit method calls keep that visible at call sites.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// `[lo, hi]`, swapping if given backwards and mapping NaN bounds to
    /// the corresponding infinity (never trust upstream arithmetic).
    pub fn new(lo: f64, hi: f64) -> Self {
        let lo = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
        let hi = if hi.is_nan() { f64::INFINITY } else { hi };
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The singleton `[c, c]` (TOP for a NaN input).
    pub fn point(c: f64) -> Self {
        if c.is_nan() {
            TOP
        } else {
            Interval { lo: c, hi: c }
        }
    }

    /// Whether this is the unbounded interval.
    pub fn is_top(self) -> bool {
        (self.lo.is_infinite() && self.lo.is_sign_negative())
            && (self.hi.is_infinite() && self.hi.is_sign_positive())
    }

    /// Whether both bounds are finite.
    pub fn is_bounded(self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Whether `c` lies inside the interval.
    pub fn contains(self, c: f64) -> bool {
        self.lo <= c && c <= self.hi
    }

    /// Whether the whole interval lies inside `[lo, hi]`.
    pub fn within(self, lo: f64, hi: f64) -> bool {
        lo <= self.lo && self.hi <= hi
    }

    /// Convex hull of the two intervals.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; `None` when disjoint.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Standard widening: any bound that moved since `prev` jumps straight
    /// to its infinity, guaranteeing fixpoint termination in at most two
    /// widening steps per variable.
    pub fn widen(prev: Interval, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < prev.lo {
                f64::NEG_INFINITY
            } else {
                prev.lo.min(next.lo)
            },
            hi: if next.hi > prev.hi {
                f64::INFINITY
            } else {
                prev.hi.max(next.hi)
            },
        }
    }

    /// `self + other`.
    pub fn add(self, other: Interval) -> Interval {
        Interval::new(guard_lo(self.lo + other.lo), guard_hi(self.hi + other.hi))
    }

    /// `self - other`.
    pub fn sub(self, other: Interval) -> Interval {
        Interval::new(guard_lo(self.lo - other.hi), guard_hi(self.hi - other.lo))
    }

    /// `-self`.
    pub fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    /// `self * other`: hull of the four corner products. `0 × ∞` corners
    /// (which are NaN in `f64`) are widened to the matching infinity —
    /// over-approximation, never a dropped bound.
    pub fn mul(self, other: Interval) -> Interval {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for a in [self.lo, self.hi] {
            for b in [other.lo, other.hi] {
                let p = a * b;
                if p.is_nan() {
                    // 0 × ∞: the true set includes values arbitrarily close
                    // to 0 from either side once the operands perturb.
                    return TOP;
                }
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        Interval::new(lo, hi)
    }

    /// `self / other`. When the denominator straddles zero the quotient is
    /// unbounded (TOP); the *NaN* question (0/0) is the caller's — this
    /// function only shapes the interval.
    pub fn div(self, other: Interval) -> Interval {
        if other.contains(0.0) {
            return TOP;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for a in [self.lo, self.hi] {
            for b in [other.lo, other.hi] {
                let q = a / b;
                if q.is_nan() {
                    return TOP; // ±∞ / ±∞
                }
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval::new(lo, hi)
    }

    /// `self.abs()`.
    pub fn abs(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval::new(0.0, self.hi.max(-self.lo))
        }
    }

    /// Pointwise `min` following `f64::min` NaN semantics at the interval
    /// level: the caller handles `maybe_nan`; this is the both-clean shape.
    pub fn min(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Pointwise `max`.
    pub fn max(self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// `f64::clamp(self, lo, hi)` with *interval* bounds: the result lands
    /// in `[lo.lo, hi.hi]` intersected with the reachable outputs. Assumes
    /// `lo ≤ hi` pointwise (the inverted case is an R11 finding, checked
    /// before this is applied).
    pub fn clamp(self, lo: Interval, hi: Interval) -> Interval {
        let out_lo = if self.lo <= lo.hi {
            // Some input at or below the bound: output floor is lo.lo …
            self.lo.max(lo.lo)
        } else {
            self.lo
        };
        let out_hi = if self.hi >= hi.lo {
            self.hi.min(hi.hi)
        } else {
            self.hi
        };
        Interval::new(out_lo, out_hi)
    }

    /// `sqrt`: the non-negative part of the input, rooted. The caller sets
    /// `maybe_nan` when the input may be negative.
    pub fn sqrt(self) -> Interval {
        let lo = self.lo.max(0.0);
        let hi = self.hi.max(0.0);
        if self.hi < 0.0 {
            // Entire input negative: result is always NaN; shape is empty,
            // represented as the zero point (flag carries the real story).
            return Interval::point(0.0);
        }
        Interval::new(lo.sqrt(), hi.sqrt())
    }

    /// `asin`/`acos`-style domain-limited map: result within `[out_lo,
    /// out_hi]` for the in-domain part of the input.
    pub fn bounded_map(out_lo: f64, out_hi: f64) -> Interval {
        Interval::new(out_lo, out_hi)
    }
}

/// Keep a lower bound a lower bound when `-∞ + ∞` style sums collapse.
fn guard_lo(x: f64) -> f64 {
    if x.is_nan() {
        f64::NEG_INFINITY
    } else {
        x
    }
}

/// Keep an upper bound an upper bound.
fn guard_hi(x: f64) -> f64 {
    if x.is_nan() {
        f64::INFINITY
    } else {
        x
    }
}

/// The smallest `f64` strictly greater than `x` — exact strict-guard
/// refinement (`x > c` ⟹ `x ≥ next_up(c)`).
pub fn next_up(x: f64) -> f64 {
    if x.is_nan() || (x.is_infinite() && x.is_sign_positive()) {
        return x;
    }
    let bits = x.to_bits();
    if bits << 1 == 0 {
        // Covers -0.0 too: the next value up from either zero.
        return f64::from_bits(1);
    }
    if x.is_sign_positive() {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// The largest `f64` strictly less than `x`.
pub fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // interval bounds are exact by construction
mod tests {
    use super::*;

    #[test]
    fn arithmetic_shapes() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-3.0, 4.0);
        assert_eq!(a.add(b), Interval::new(-2.0, 6.0));
        assert_eq!(a.sub(b), Interval::new(-3.0, 5.0));
        assert_eq!(a.mul(b), Interval::new(-6.0, 8.0));
        assert_eq!(a.neg(), Interval::new(-2.0, -1.0));
        assert_eq!(b.abs(), Interval::new(0.0, 4.0));
    }

    #[test]
    fn division_by_zero_straddle_is_top() {
        let a = Interval::new(1.0, 1.0);
        assert!(a.div(Interval::new(-1.0, 1.0)).is_top());
        assert_eq!(a.div(Interval::new(2.0, 4.0)), Interval::new(0.25, 0.5));
    }

    #[test]
    fn clamp_bounds_the_output() {
        let top = TOP.clamp(Interval::point(-4.0), Interval::point(2.4));
        assert_eq!(top, Interval::new(-4.0, 2.4));
        // Input already inside: clamp is the identity shape (a dead clamp —
        // exactly what R11 looks for).
        let inside = Interval::new(0.0, 1.0).clamp(Interval::point(-4.0), Interval::point(2.4));
        assert_eq!(inside, Interval::new(0.0, 1.0));
        // Input partially below: floor rises to the bound.
        let low = Interval::new(-10.0, 1.0).clamp(Interval::point(-4.0), Interval::point(2.4));
        assert_eq!(low, Interval::new(-4.0, 1.0));
    }

    #[test]
    fn widening_reaches_fixpoint() {
        let prev = Interval::new(0.0, 1.0);
        let grown = Interval::new(0.0, 2.0);
        let w = Interval::widen(prev, grown);
        assert_eq!(w, Interval::new(0.0, f64::INFINITY));
        // Widening is idempotent once a bound is at infinity.
        assert_eq!(Interval::widen(w, Interval::new(-5.0, 100.0)).hi, f64::INFINITY);
    }

    #[test]
    fn next_up_is_strict_and_adjacent() {
        assert!(next_up(0.0) > 0.0);
        assert_eq!(next_up(0.0), f64::from_bits(1));
        assert_eq!(next_up(-0.0), f64::from_bits(1));
        assert!(next_up(1.0) > 1.0);
        assert!(next_down(1.0) < 1.0);
        assert_eq!(next_down(next_up(5.5)), 5.5);
    }

    #[test]
    fn join_and_meet() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 5.0);
        assert_eq!(a.join(b), Interval::new(0.0, 5.0));
        assert_eq!(a.meet(b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.meet(Interval::new(3.0, 4.0)), None);
    }
}
