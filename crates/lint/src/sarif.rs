//! SARIF 2.1.0 emitter (and an offline structural validator).
//!
//! CI wants findings in a machine-ingestible interchange format so they
//! show up as code-scanning annotations; SARIF 2.1.0 is the lingua franca.
//! The emitter writes the minimal valid document by hand — one run, the
//! full R1–R8 rule catalog in `tool.driver.rules`, one `result` per
//! diagnostic with a `physicalLocation` — because the workspace has no
//! JSON serializer and vendoring one for this would be absurd.
//!
//! [`validate`] is a self-check: a ~hundred-line JSON parser plus
//! assertions over the subset of the 2.1.0 schema the emitter uses
//! (required properties, level vocabulary, rule-id cross-references,
//! 1-based line numbers). It runs in tests and behind `--format sarif` so
//! an emitter regression fails the lint itself rather than surfacing as a
//! cryptic upload error in CI.

use crate::diag::{json_escape, Diagnostic, Severity, ALL_RULES};
use std::collections::BTreeMap;

/// SARIF schema the document declares.
pub const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders all diagnostics as one SARIF 2.1.0 document.
pub fn emit(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096 + diags.len() * 256);
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": \"{SCHEMA_URI}\",\n"));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"adas-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/adas-attack-repro\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": \"{}\",\n", rule.id()));
        out.push_str(&format!("              \"name\": \"{}\",\n", rule.name()));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": \"{}\" }}\n",
            json_escape(rule.summary())
        ));
        out.push_str(if i + 1 < ALL_RULES.len() {
            "            },\n"
        } else {
            "            }\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let rule_index: BTreeMap<&str, usize> = ALL_RULES
        .iter()
        .enumerate()
        .map(|(i, r)| (r.id(), i))
        .collect();
    for (i, d) in diags.iter().enumerate() {
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", d.rule.id()));
        out.push_str(&format!(
            "          \"ruleIndex\": {},\n",
            rule_index[d.rule.id()]
        ));
        out.push_str(&format!("          \"level\": \"{level}\",\n"));
        out.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            json_escape(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
            json_escape(&d.file)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            d.line.max(1)
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(if i + 1 < diags.len() {
            "        },\n"
        } else {
            "        }\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// A parsed JSON value — just enough to validate what [`emit`] produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document (strict enough for validation purposes).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some('"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some('\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('b') => s.push('\u{8}'),
                            Some('f') => s.push('\u{c}'),
                            Some('u') => {
                                let hex: String =
                                    b.get(*pos + 1..*pos + 5).unwrap_or(&[]).iter().collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| format!("bad \\u escape: {hex}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape: {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(c) => {
                        s.push(*c);
                        *pos += 1;
                    }
                }
            }
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while b
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = b[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number: {text}"))
        }
        Some('t') if matches(b, *pos, "true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if matches(b, *pos, "false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if matches(b, *pos, "null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) => Err(format!("unexpected character {c:?} at offset {pos}")),
    }
}

fn matches(b: &[char], pos: usize, word: &str) -> bool {
    b.get(pos..pos + word.len())
        .is_some_and(|s| s.iter().collect::<String>() == word)
}

/// Validates a SARIF document against the subset of the 2.1.0 schema the
/// emitter uses. Returns the first violation found.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        return Err("version must be \"2.1.0\"".to_string());
    }
    if doc.get("$schema").and_then(Json::as_str).is_none() {
        return Err("$schema missing".to_string());
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("runs must be an array")?;
    if runs.is_empty() {
        return Err("runs must be non-empty".to_string());
    }
    for run in runs {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or("run.tool.driver missing")?;
        if driver.get("name").and_then(Json::as_str).is_none() {
            return Err("tool.driver.name missing".to_string());
        }
        let rules = driver
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("tool.driver.rules must be an array")?;
        let mut rule_ids: Vec<&str> = Vec::new();
        for rule in rules {
            let id = rule
                .get("id")
                .and_then(Json::as_str)
                .ok_or("rule.id missing")?;
            rule_ids.push(id);
            if rule
                .get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Json::as_str)
                .is_none()
            {
                return Err(format!("rule {id}: shortDescription.text missing"));
            }
        }
        let results = run
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("run.results must be an array")?;
        for (i, result) in results.iter().enumerate() {
            let rule_id = result
                .get("ruleId")
                .and_then(Json::as_str)
                .ok_or(format!("result {i}: ruleId missing"))?;
            if !rule_ids.contains(&rule_id) {
                return Err(format!("result {i}: ruleId {rule_id} not in rule catalog"));
            }
            let level = result
                .get("level")
                .and_then(Json::as_str)
                .ok_or(format!("result {i}: level missing"))?;
            if !matches!(level, "error" | "warning" | "note" | "none") {
                return Err(format!("result {i}: invalid level {level}"));
            }
            if result
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .is_none()
            {
                return Err(format!("result {i}: message.text missing"));
            }
            let locations = result
                .get("locations")
                .and_then(Json::as_arr)
                .ok_or(format!("result {i}: locations missing"))?;
            for loc in locations {
                let phys = loc
                    .get("physicalLocation")
                    .ok_or(format!("result {i}: physicalLocation missing"))?;
                if phys
                    .get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::as_str)
                    .is_none()
                {
                    return Err(format!("result {i}: artifactLocation.uri missing"));
                }
                let line = phys
                    .get("region")
                    .and_then(|r| r.get("startLine"))
                    .and_then(Json::as_num)
                    .ok_or(format!("result {i}: region.startLine missing"))?;
                if line < 1.0 {
                    return Err(format!("result {i}: startLine must be >= 1"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Rule;

    fn sample_diags() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: Rule::TaintFlow,
                severity: Severity::Error,
                file: "crates/core/src/engine.rs".into(),
                line: 42,
                snippet: "fn emit".into(),
                message: "flow chain: a → b \"quoted\"\nsecond line".into(),
            },
            Diagnostic {
                rule: Rule::UnitSafety,
                severity: Severity::Warning,
                file: "crates/openadas/src/adas.rs".into(),
                line: 7,
                snippet: "pub fn x(v: f64)".into(),
                message: "bare f64".into(),
            },
        ]
    }

    #[test]
    fn emitted_document_validates() {
        let doc = emit(&sample_diags());
        validate(&doc).expect("emitted SARIF should satisfy the 2.1.0 subset");
    }

    #[test]
    fn empty_result_set_validates() {
        validate(&emit(&[])).expect("empty SARIF should validate");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let doc = emit(&sample_diags());
        assert!(validate(&doc.replace("\"2.1.0\"", "\"9.9\"")).is_err());
        assert!(validate(&doc.replace("startLine", "startLjne")).is_err());
        assert!(validate(&doc.replace("\"ruleId\": \"R6\"", "\"ruleId\": \"nope\"")).is_err());
    }

    #[test]
    fn escapes_survive_roundtrip() {
        let doc = emit(&sample_diags());
        let parsed = parse_json(&doc).unwrap();
        let msg = parsed
            .get("runs")
            .and_then(Json::as_arr)
            .and_then(|r| r[0].get("results"))
            .and_then(Json::as_arr)
            .and_then(|r| r[0].get("message"))
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(msg, "flow chain: a → b \"quoted\"\nsecond line");
    }
}
