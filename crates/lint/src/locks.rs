//! R12 lock discipline and the workspace half of R14 shared-state
//! determinism.
//!
//! The campaign pool (PR 8) made correctness depend on invariants no type
//! system checks: locks must be acquired in a consistent global order, no
//! guard may be held across a pool participate/wait boundary (a parked
//! worker cannot make progress while the submitter holds what it needs),
//! `Condvar::wait` must sit in a predicate loop (spurious wakeups are
//! legal), and campaign results must merge by *index*, never by completion
//! order (completion order is scheduling-dependent, and a
//! scheduling-dependent merge silently invalidates every BENCH_*.json
//! artifact the paper reproduction rests on).
//!
//! The input is the per-fn [`LockEvent`] stream the parser extracts under
//! its token-tree guard-lifetime model, stitched cross-function through
//! the call graph: a call made under a guard contributes lock-order edges
//! to every lock the callee may transitively acquire. Like R6/R7 the
//! analysis is name-based and over-approximate — a reported cycle might
//! not be executable, but an *absent* cycle over the modeled lifetimes is
//! a real guarantee, which is the direction a deadlock gate must err in.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Rule, Severity};
use crate::parser::{Callee, FileFacts, FnDef, LockOp};
use crate::scope::{concurrency_applies, FileInfo};
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Pool submit/wait boundary functions: while one of these runs, progress
/// depends on *other* threads acquiring the pool's locks, so holding any
/// caller-side guard across them is a deadlock recipe even without a
/// lock-order cycle. Matched against qualified and bare symbol names of
/// the transitive callee set.
pub const BOUNDARY_FNS: [&str; 5] = [
    "Job::participate",
    "Job::wait",
    "run_indexed",
    "submit",
    "submit_catching",
];

/// Accumulator methods that, invoked under a guard, indicate a
/// merge-by-completion-order reduction (R14): whichever thread finishes
/// first writes first. Index-addressed merges (`slots[i] = …`,
/// `VecDeque::push_back` on a claim-ordered scheduling deque) are the
/// sanctioned alternatives and are deliberately absent from this table.
pub const MERGE_SINKS: [&str; 3] = ["push", "extend", "append"];

/// The workspace lock-order graph: `a → b` means lock `b` is (possibly
/// transitively) acquired while `a` is held, with one witness site per
/// edge.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// from-lock → to-lock → (file, line, via-fn) of the first witness.
    pub edges: BTreeMap<String, BTreeMap<String, (String, usize, String)>>,
}

impl LockGraph {
    fn add_edge(&mut self, from: &str, to: &str, file: &str, line: usize, via: &str) {
        self.edges
            .entry(from.to_string())
            .or_default()
            .entry(to.to_string())
            .or_insert_with(|| (file.to_string(), line, via.to_string()));
    }

    /// GraphViz rendering, uploaded as a CI artifact so a reviewer can see
    /// the whole order at a glance.
    pub fn to_dot(&self) -> String {
        let mut nodes: BTreeSet<&str> = BTreeSet::new();
        for (a, tos) in &self.edges {
            nodes.insert(a);
            for b in tos.keys() {
                nodes.insert(b);
            }
        }
        let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
        for n in nodes {
            out.push_str(&format!("  \"{n}\";\n"));
        }
        for (a, tos) in &self.edges {
            for (b, (file, line, via)) in tos {
                out.push_str(&format!(
                    "  \"{a}\" -> \"{b}\" [label=\"{via} ({file}:{line})\"];\n"
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Strongly connected components with ≥ 2 nodes, plus self-loop nodes:
    /// exactly the node sets witnessing a lock-order cycle.
    fn cycles(&self) -> Vec<Vec<String>> {
        // Kosaraju over the (small) name graph.
        let mut nodes: Vec<String> = Vec::new();
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (a, tos) in &self.edges {
            for n in std::iter::once(a).chain(tos.keys()) {
                if !index.contains_key(n.as_str()) {
                    index.insert(n.as_str(), nodes.len());
                    nodes.push(n.clone());
                }
            }
        }
        let n = nodes.len();
        let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut self_loop = vec![false; n];
        for (a, tos) in &self.edges {
            let ia = index[a.as_str()];
            for b in tos.keys() {
                let ib = index[b.as_str()];
                if ia == ib {
                    self_loop[ia] = true;
                } else {
                    fwd[ia].push(ib);
                    rev[ib].push(ia);
                }
            }
        }
        // Pass 1: finish order via iterative DFS.
        let mut seen = vec![false; n];
        let mut order: Vec<usize> = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let mut stack = vec![(s, 0usize)];
            seen[s] = true;
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < fwd[v].len() {
                    let w = fwd[v][*next];
                    *next += 1;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        // Pass 2: components on the transpose, in reverse finish order.
        let mut comp = vec![usize::MAX; n];
        let mut c = 0usize;
        for &s in order.iter().rev() {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut queue = VecDeque::from([s]);
            comp[s] = c;
            while let Some(v) = queue.pop_front() {
                for &w in &rev[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = c;
                        queue.push_back(w);
                    }
                }
            }
            c += 1;
        }
        let mut groups: Vec<Vec<String>> = vec![Vec::new(); c];
        for (i, &ci) in comp.iter().enumerate() {
            groups[ci].push(nodes[i].clone());
        }
        let mut out: Vec<Vec<String>> = Vec::new();
        for (i, &looped) in self_loop.iter().enumerate() {
            if looped && groups[comp[i]].len() == 1 {
                out.push(vec![nodes[i].clone()]);
            }
        }
        out.extend(groups.into_iter().filter(|g| g.len() >= 2).map(|mut g| {
            g.sort();
            g
        }));
        out.sort();
        out
    }
}

/// Per-symbol view the analysis walks: which fns are in concurrency scope,
/// and where each symbol's definition lives.
struct Ctx<'a> {
    /// Symbol id → (file info, fn def) for every symbol, scoped or not.
    defs: Vec<(&'a FileInfo, &'a FnDef)>,
    /// Symbol ids of in-scope, non-test fns, in id order.
    scoped: Vec<usize>,
}

fn build_ctx<'a>(files: &'a [(FileInfo, FileFacts)], table: &SymbolTable) -> Ctx<'a> {
    let mut defs = Vec::with_capacity(table.symbols.len());
    let mut scoped = Vec::new();
    for (info, facts) in files {
        let in_scope = concurrency_applies(info);
        for f in &facts.fns {
            if in_scope && !f.is_test {
                scoped.push(defs.len());
            }
            defs.push((info, f));
        }
    }
    debug_assert_eq!(defs.len(), table.symbols.len());
    Ctx { defs, scoped }
}

/// Resolves one guarded call the way the call graph would, honouring the
/// method/free distinction the parser recorded.
fn resolve_guarded(table: &SymbolTable, from_crate: &str, name: &str, method: bool) -> Vec<usize> {
    table
        .resolve_name(from_crate, name)
        .into_iter()
        .filter(|&t| table.symbols[t].impl_type.is_some() == method)
        .collect()
}

/// Locks a symbol may acquire transitively (its own `Acquire` events plus
/// everything reachable through the call graph), memoized across queries.
fn acquire_closure(
    start: usize,
    ctx: &Ctx<'_>,
    table: &SymbolTable,
    graph: &CallGraph,
    memo: &mut HashMap<usize, BTreeSet<String>>,
) -> BTreeSet<String> {
    if let Some(hit) = memo.get(&start) {
        return hit.clone();
    }
    let mut acquired = BTreeSet::new();
    let mut seen = HashSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some(cur) = queue.pop_front() {
        let (info, f) = ctx.defs[cur];
        if concurrency_applies(info) && !f.is_test {
            for ev in &f.locks {
                if ev.op == LockOp::Acquire {
                    acquired.insert(ev.what.clone());
                }
            }
        }
        for &next in &graph.edges[cur] {
            if !table.symbols[next].is_test && seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    memo.insert(start, acquired.clone());
    acquired
}

/// Whether a symbol may transitively enter a pool boundary fn; returns the
/// first boundary's qualified name.
fn boundary_closure(
    start: usize,
    table: &SymbolTable,
    graph: &CallGraph,
) -> Option<String> {
    let mut seen = HashSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some(cur) = queue.pop_front() {
        let s = &table.symbols[cur];
        if BOUNDARY_FNS.contains(&s.qual.as_str()) || BOUNDARY_FNS.contains(&s.name.as_str()) {
            return Some(s.qual.clone());
        }
        for &next in &graph.edges[cur] {
            if !table.symbols[next].is_test && seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    None
}

/// R12 + R14 workspace analysis. Returns the diagnostics and the
/// lock-order graph (for `--lock-graph-dot`).
pub fn concurrency_rules(
    files: &[(FileInfo, FileFacts)],
    table: &SymbolTable,
    graph: &CallGraph,
) -> (Vec<Diagnostic>, LockGraph) {
    let ctx = build_ctx(files, table);
    let mut lock_graph = LockGraph::default();
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut closures: HashMap<usize, BTreeSet<String>> = HashMap::new();

    for &id in &ctx.scoped {
        let (info, f) = ctx.defs[id];
        let sym = &table.symbols[id];
        for ev in &f.locks {
            match ev.op {
                LockOp::Acquire => {
                    for h in &ev.held {
                        lock_graph.add_edge(h, &ev.what, &info.rel, ev.line, &sym.qual);
                    }
                }
                LockOp::CondWait => {
                    if !ev.in_loop {
                        out.push(Diagnostic {
                            rule: Rule::LockDiscipline,
                            severity: Severity::Error,
                            file: info.rel.clone(),
                            line: ev.line,
                            snippet: format!("{}.wait(…) in {}", ev.what, sym.qual),
                            message: format!(
                                "`Condvar::wait` on `{}` outside a predicate loop: spurious \
                                 wakeups are legal, so the condition must be re-checked in a \
                                 `while` around the wait",
                                ev.what
                            ),
                        });
                    }
                    if ev.held.len() > 1 {
                        out.push(Diagnostic {
                            rule: Rule::LockDiscipline,
                            severity: Severity::Error,
                            file: info.rel.clone(),
                            line: ev.line,
                            snippet: format!("{}.wait(…) in {}", ev.what, sym.qual),
                            message: format!(
                                "`Condvar::wait` on `{}` while also holding `{}`: the wait \
                                 releases only its own mutex, so every other guard blocks the \
                                 thread that must signal",
                                ev.what,
                                ev.held[..ev.held.len() - 1].join("`, `"),
                            ),
                        });
                    }
                }
                LockOp::GuardedCall => {
                    if ev.held.is_empty() {
                        continue;
                    }
                    if ev.method && MERGE_SINKS.contains(&ev.what.as_str()) {
                        out.push(Diagnostic {
                            rule: Rule::SharedStateDeterminism,
                            severity: Severity::Error,
                            file: info.rel.clone(),
                            line: ev.line,
                            snippet: format!(".{}(…) under `{}` in {}", ev.what, ev.held.join("`+`"), sym.qual),
                            message: format!(
                                "`.{}(…)` into shared state under a lock merges results in \
                                 completion order, which is scheduling-dependent; merge by \
                                 index into pre-sized slots instead",
                                ev.what
                            ),
                        });
                    }
                    for t in resolve_guarded(table, &info.crate_name, &ev.what, ev.method) {
                        if table.symbols[t].is_test {
                            continue;
                        }
                        for l in acquire_closure(t, &ctx, table, graph, &mut closures) {
                            for h in &ev.held {
                                lock_graph.add_edge(h, &l, &info.rel, ev.line, &sym.qual);
                            }
                        }
                        if let Some(boundary) = boundary_closure(t, table, graph) {
                            out.push(Diagnostic {
                                rule: Rule::LockDiscipline,
                                severity: Severity::Error,
                                file: info.rel.clone(),
                                line: ev.line,
                                snippet: format!(
                                    "{}(…) under `{}` in {}",
                                    ev.what,
                                    ev.held.join("`+`"),
                                    sym.qual
                                ),
                                message: format!(
                                    "lock `{}` held across the pool boundary `{boundary}`: \
                                     progress there depends on other threads taking the pool's \
                                     locks, so drop every guard before submitting or waiting",
                                    ev.held.join("`, `"),
                                ),
                            });
                        }
                    }
                }
            }
        }

        // R14: an env-reading `OnceLock` initializer latches first-caller
        // environment for the whole process — a replay with a different
        // environment silently diverges.
        let inits: Vec<usize> = f
            .calls
            .iter()
            .filter(|c| matches!(c.callee.name(), "get_or_init" | "get_or_try_init"))
            .map(|c| c.line)
            .collect();
        let reads_env = f.calls.iter().any(|c| match &c.callee {
            Callee::Path(prefix, name) => {
                prefix == "env" && matches!(name.as_str(), "var" | "var_os" | "vars")
            }
            _ => false,
        });
        if reads_env {
            for line in inits {
                out.push(Diagnostic {
                    rule: Rule::SharedStateDeterminism,
                    severity: Severity::Error,
                    file: info.rel.clone(),
                    line,
                    snippet: format!("get_or_init with env read in {}", sym.qual),
                    message: "`OnceLock` initializer reads the environment: the value latches \
                              whatever the first caller saw, so replays under a different \
                              environment silently diverge; read the environment per call or \
                              inject the config explicitly"
                        .into(),
                });
            }
        }
    }

    for cycle in lock_graph.cycles() {
        // Witness: the lexicographically first edge inside the cycle.
        let members: BTreeSet<&str> = cycle.iter().map(|s| s.as_str()).collect();
        let witness = lock_graph
            .edges
            .iter()
            .filter(|(a, _)| members.contains(a.as_str()))
            .flat_map(|(_, tos)| tos.iter())
            .filter(|(b, _)| members.contains(b.as_str()))
            .map(|(_, site)| site)
            .min_by_key(|(file, line, _)| (file.clone(), *line));
        let (file, line, via) = match witness {
            Some(w) => w.clone(),
            None => continue,
        };
        let ring = if cycle.len() == 1 {
            format!("{0} → {0}", cycle[0])
        } else {
            format!("{} → {}", cycle.join(" → "), cycle[0])
        };
        out.push(Diagnostic {
            rule: Rule::LockDiscipline,
            severity: Severity::Error,
            file,
            line,
            snippet: format!("lock-order cycle via {via}"),
            message: format!(
                "lock-order cycle {ring}: two threads interleaving these acquisitions can \
                 deadlock; impose one global order (or narrow a guard so the inner \
                 acquisition happens after release)"
            ),
        });
    }

    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule.id()).cmp(&(&b.file, b.line, b.rule.id()))
    });
    (out, lock_graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::symbols::parse_files;

    fn analyze(sources: &[(&str, &str)]) -> (Vec<Diagnostic>, LockGraph) {
        let files = parse_files(sources);
        let table = SymbolTable::build(&files, None);
        let graph = CallGraph::build(&files, &table);
        concurrency_rules(&files, &table, &graph)
    }

    #[test]
    fn guarded_steal_self_cycle_is_reported() {
        // The shape of the real pool bug: a temporary guard on the own
        // queue is still held while `steal` locks a victim's queue — the
        // same lock name, so the order graph gets a self-edge.
        let (d, g) = analyze(&[(
            "crates/platform/src/pool.rs",
            "pub struct Job;\n\
             impl Job {\n\
               fn participate(&self) { let t = self.queues[0].lock().unwrap().pop_front().or_else(|| self.steal(0)); }\n\
               fn steal(&self, s: usize) -> Option<usize> { self.queues[1].lock().unwrap().pop_back() }\n\
             }\n",
        )]);
        assert!(
            g.edges.get("queues").is_some_and(|t| t.contains_key("queues")),
            "{g:?}"
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::LockDiscipline);
        assert!(d[0].message.contains("cycle"), "{}", d[0].message);
    }

    #[test]
    fn two_lock_cycle_across_fns() {
        let (d, _) = analyze(&[(
            "crates/platform/src/pool.rs",
            "pub struct S;\n\
             impl S {\n\
               fn ab(&self) { let a = self.alpha.lock().unwrap(); self.take_beta(); }\n\
               fn take_beta(&self) { let b = self.beta.lock().unwrap(); }\n\
               fn ba(&self) { let b = self.beta.lock().unwrap(); self.take_alpha(); }\n\
               fn take_alpha(&self) { let a = self.alpha.lock().unwrap(); }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("alpha → beta → alpha"), "{}", d[0].message);
    }

    #[test]
    fn ordered_nesting_is_clean() {
        let (d, g) = analyze(&[(
            "crates/platform/src/pool.rs",
            "pub struct S;\n\
             impl S {\n\
               fn outer(&self) { let a = self.alpha.lock().unwrap(); self.inner(); }\n\
               fn inner(&self) { let b = self.beta.lock().unwrap(); }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
        assert!(g.edges.get("alpha").is_some_and(|t| t.contains_key("beta")));
    }

    #[test]
    fn condvar_wait_outside_loop_and_extra_guard() {
        let (d, _) = analyze(&[(
            "crates/platform/src/pool.rs",
            "pub struct S;\n\
             impl S {\n\
               fn bad(&self) { let extra = self.other.lock().unwrap(); let g = self.m.lock().unwrap(); let g = self.cv.wait(g).unwrap(); }\n\
               fn good(&self) { let mut g = self.m.lock().unwrap(); while !*g { g = self.cv.wait(g).unwrap(); } }\n\
             }\n",
        )]);
        let msgs: Vec<&str> = d.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("outside a predicate loop")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("releases only its own mutex")),
            "{msgs:?}"
        );
        assert!(
            !d.iter().any(|x| x.snippet.contains("in S::good")),
            "{d:?}"
        );
    }

    #[test]
    fn lock_held_across_pool_boundary() {
        let (d, _) = analyze(&[(
            "crates/platform/src/experiment.rs",
            "pub struct Job;\n\
             impl Job { pub fn wait(&self) {} }\n\
             pub fn submit_under_guard(job: &Job, m: &std::sync::Mutex<u32>) {\n\
               let g = m.lock().unwrap();\n\
               job.wait();\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("pool boundary `Job::wait`"), "{}", d[0].message);
    }

    #[test]
    fn completion_order_merge_flagged_index_merge_clean() {
        let (d, _) = analyze(&[(
            "crates/platform/src/experiment.rs",
            "pub fn merge_bad(out: &std::sync::Mutex<Vec<u32>>, v: u32) {\n\
               let mut g = out.lock().unwrap();\n\
               g.push(v);\n\
             }\n\
             pub fn merge_good(out: &std::sync::Mutex<Vec<Option<u32>>>, i: usize, v: u32) {\n\
               let mut g = out.lock().unwrap();\n\
               g[i] = Some(v);\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::SharedStateDeterminism);
        assert!(d[0].message.contains("completion order"), "{}", d[0].message);
    }

    #[test]
    fn env_reading_oncelock_initializer_flagged() {
        let (d, _) = analyze(&[(
            "crates/platform/src/config.rs",
            "pub fn workers() -> usize {\n\
               static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();\n\
               *N.get_or_init(|| std::env::var(\"WORKERS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1))\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::SharedStateDeterminism);
        assert!(d[0].message.contains("latches"), "{}", d[0].message);
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let (d, g) = analyze(&[(
            "crates/lint/src/worker.rs",
            "pub fn own_pool(m: &std::sync::Mutex<u32>) { let g = m.lock().unwrap(); let h = m.lock().unwrap(); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
        assert!(g.edges.is_empty(), "{g:?}");
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let (_, g) = analyze(&[(
            "crates/platform/src/pool.rs",
            "pub struct S;\n\
             impl S {\n\
               fn outer(&self) { let a = self.alpha.lock().unwrap(); self.inner(); }\n\
               fn inner(&self) { let b = self.beta.lock().unwrap(); }\n\
             }\n",
        )]);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph lock_order {"), "{dot}");
        assert!(dot.contains("\"alpha\" -> \"beta\""), "{dot}");
        assert!(dot.contains("S::outer"), "{dot}");
    }
}
