//! A comment- and string-aware line scanner for Rust sources.
//!
//! The lint rules are lexical, so the one thing the tokenizer must get
//! right is *masking*: every character that lives inside a `//` comment, a
//! `/* */` block comment (nested), a `"…"` string, a `r#"…"#` raw string, a
//! byte/raw-byte string, or a character literal is replaced by a space
//! before any rule looks at the line. A `.unwrap()` spelled inside a doc
//! comment or a log message must never produce a diagnostic.
//!
//! Two by-products fall out of the same pass:
//!
//! * `// adas-lint: allow(<rules>, reason = "…")` suppression comments are
//!   parsed while the comment text is still visible;
//! * `#[cfg(test)]` / `#[test]` regions are marked so rules can skip test
//!   code inside library files.

use crate::diag::Rule;
use std::collections::HashMap;

/// One source line after masking.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original text (without the trailing newline).
    pub raw: String,
    /// The masked text: identical to `raw` except that comment and literal
    /// characters are spaces. Always the same `char` length as `raw`.
    pub code: String,
    /// Whether the line is inside a `#[cfg(test)]` item or `#[test]` fn.
    pub in_test: bool,
}

/// A parsed `adas-lint: allow(...)` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules the suppression covers; empty means "all rules".
    pub rules: Vec<Rule>,
    /// The free-text justification, if one was given.
    pub reason: Option<String>,
}

impl Suppression {
    /// Whether this suppression covers `rule`.
    pub fn covers(&self, rule: Rule) -> bool {
        self.rules.is_empty() || self.rules.contains(&rule)
    }
}

/// A fully tokenized source file.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// Masked lines, in order.
    pub lines: Vec<Line>,
    /// Suppressions keyed by the 1-based line they apply to. A suppression
    /// comment that shares its line with code applies to that line; a
    /// comment alone on a line applies to the next line.
    pub suppressions: HashMap<usize, Vec<Suppression>>,
}

impl SourceFile {
    /// Suppressions applying to 1-based `line` that cover `rule`.
    pub fn is_suppressed(&self, line: usize, rule: Rule) -> bool {
        self.suppressions
            .get(&line)
            .is_some_and(|v| v.iter().any(|s| s.covers(rule)))
    }
}

/// Pushes `ch` into the masked buffer: newlines survive (they keep lines
/// aligned), everything else inside a masked region becomes a space.
fn push_masked(code: &mut String, ch: char) {
    code.push(if ch == '\n' { '\n' } else { ' ' });
}

/// Tokenizes `source` into masked lines plus suppression/test metadata.
pub fn tokenize(source: &str) -> SourceFile {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut i = 0usize;

    // The masked mirror of the whole file; split into lines at the end.
    let mut code = String::with_capacity(source.len());
    // (0-based line index, comment text, line had code before the comment)
    let mut comments: Vec<(usize, String, bool)> = Vec::new();
    let mut line_no = 0usize;
    let mut line_start = 0usize; // byte index into `code` of the current line

    macro_rules! newline {
        () => {{
            code.push('\n');
            line_no += 1;
            line_start = code.len();
        }};
    }

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                newline!();
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let had_code = !code[line_start..].trim().is_empty();
                let mut text = String::new();
                while i < n && chars[i] != '\n' {
                    text.push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
                comments.push((line_no, text, had_code));
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 0usize;
                while i < n {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        code.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if chars[i] == '\n' {
                            newline!();
                        } else {
                            code.push(' ');
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                i = mask_string(&chars, i, &mut code, &mut line_no, &mut line_start);
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                i = mask_raw_string(&chars, i, &mut code, &mut line_no, &mut line_start);
            }
            'b' if i + 1 < n && chars[i + 1] == '"' && !ident_before(&chars, i) => {
                code.push(' ');
                i = mask_string(&chars, i + 1, &mut code, &mut line_no, &mut line_start);
            }
            '\'' => {
                // Char literal vs lifetime. A literal is `'x'` or `'\…'`;
                // anything else (e.g. `'static`) passes through as code.
                let is_escape = i + 1 < n && chars[i + 1] == '\\';
                let is_plain = i + 2 < n && chars[i + 1] != '\'' && chars[i + 1] != '\n' && chars[i + 2] == '\'';
                if is_escape || is_plain {
                    let mut j = i + 1;
                    if chars[j] == '\\' {
                        j += 2; // escape introducer + escaped char
                        while j < n && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1; // \u{…} runs to the closing quote
                        }
                    } else {
                        j += 1;
                    }
                    let end = if j < n && chars[j] == '\'' { j + 1 } else { i + 1 };
                    for _ in i..end {
                        code.push(' ');
                    }
                    i = end;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }

    let raw_lines: Vec<&str> = source.split('\n').collect();
    let code_lines: Vec<&str> = code.split('\n').collect();
    let mut lines: Vec<Line> = raw_lines
        .iter()
        .zip(code_lines.iter())
        .map(|(r, c)| Line {
            raw: r.trim_end_matches('\r').to_string(),
            code: c.to_string(),
            in_test: false,
        })
        .collect();
    // `split` yields one trailing empty segment for a newline-terminated
    // file; drop it so line counts match editors.
    if lines.last().is_some_and(|l| l.raw.is_empty()) && source.ends_with('\n') {
        lines.pop();
    }
    mark_test_regions(&mut lines);

    let mut file = SourceFile {
        lines,
        suppressions: HashMap::new(),
    };
    for (line_idx, text, had_code) in comments {
        if let Some(sup) = parse_suppression(&text) {
            let target = if had_code { line_idx + 1 } else { line_idx + 2 };
            file.suppressions.entry(target).or_default().push(sup);
        }
    }
    file
}

/// Whether the char before `i` continues an identifier (so `r`/`b` is part
/// of a name like `attr` rather than a literal prefix).
fn ident_before(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Whether `chars[i..]` starts a raw (byte) string: `r"`, `r#"`, `br"`, …
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if ident_before(chars, i) {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if j >= chars.len() || chars[j] != 'r' {
        return false;
    }
    j += 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}

/// Masks a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote.
fn mask_string(
    chars: &[char],
    start: usize,
    code: &mut String,
    line_no: &mut usize,
    line_start: &mut usize,
) -> usize {
    let n = chars.len();
    let mut i = start + 1;
    code.push(' '); // opening quote
    while i < n {
        match chars[i] {
            '\\' if i + 1 < n => {
                push_masked(code, chars[i]);
                push_masked(code, chars[i + 1]);
                for k in [i, i + 1] {
                    if chars[k] == '\n' {
                        *line_no += 1;
                        *line_start = code.len();
                    }
                }
                i += 2;
            }
            '"' => {
                code.push(' ');
                return i + 1;
            }
            ch => {
                push_masked(code, ch);
                if ch == '\n' {
                    *line_no += 1;
                    *line_start = code.len();
                }
                i += 1;
            }
        }
    }
    i
}

/// Masks a raw (byte) string starting at its `r`/`b` prefix; returns the
/// index one past the closing delimiter.
fn mask_raw_string(
    chars: &[char],
    start: usize,
    code: &mut String,
    line_no: &mut usize,
    line_start: &mut usize,
) -> usize {
    let n = chars.len();
    let mut i = start;
    if chars[i] == 'b' {
        code.push(' ');
        i += 1;
    }
    code.push(' '); // the `r`
    i += 1;
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        code.push(' ');
        hashes += 1;
        i += 1;
    }
    if i < n && chars[i] == '"' {
        code.push(' ');
        i += 1;
    }
    while i < n {
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut k = 0usize;
            while j < n && chars[j] == '#' && k < hashes {
                j += 1;
                k += 1;
            }
            if k == hashes {
                for _ in i..j {
                    code.push(' ');
                }
                return j;
            }
        }
        push_masked(code, chars[i]);
        if chars[i] == '\n' {
            *line_no += 1;
            *line_start = code.len();
        }
        i += 1;
    }
    i
}

/// Marks lines inside `#[cfg(test)]` items and `#[test]` functions.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut test_depths: Vec<i64> = Vec::new();

    for line in lines.iter_mut() {
        let code = line.code.clone();
        let mut in_test_this_line = !test_depths.is_empty();
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            pending_attr = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        test_depths.push(depth);
                        pending_attr = false;
                        in_test_this_line = true;
                    }
                }
                '}' => {
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                    depth -= 1;
                }
                // `#[cfg(test)] use foo;` — attribute on a braceless item.
                ';' if pending_attr && test_depths.is_empty() => {
                    pending_attr = false;
                }
                _ => {}
            }
        }
        line.in_test = in_test_this_line || !test_depths.is_empty() || pending_attr;
    }
}

/// Parses `adas-lint: allow(R2, reason = "…")` out of a comment's text.
///
/// Doc comments (`///`, `//!`) never suppress: they *document* the syntax
/// (this very file does), and a doc-comment "suppression" would otherwise
/// immediately trip the dead-suppression check.
fn parse_suppression(comment: &str) -> Option<Suppression> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let rest = comment.split("adas-lint:").nth(1)?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;

    let (rules_part, reason) = match inner.find("reason") {
        Some(pos) => {
            let after = &inner[pos + "reason".len()..];
            let after = after.trim_start().strip_prefix('=').unwrap_or(after);
            let reason = after
                .split('"')
                .nth(1)
                .map(str::to_string)
                .or_else(|| Some(after.trim().trim_end_matches(')').trim().to_string()));
            (&inner[..pos], reason)
        }
        None => {
            let end = inner.find(')').unwrap_or(inner.len());
            (&inner[..end], None)
        }
    };

    let rules: Vec<Rule> = rules_part
        .split(',')
        .map(|t| t.trim().trim_end_matches(')').trim())
        .filter(|t| !t.is_empty())
        .filter_map(Rule::parse)
        .collect();

    Some(Suppression { rules, reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comment() {
        let f = tokenize("let x = 1; // call .unwrap() here\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].raw.contains("unwrap"));
        assert_eq!(f.lines[0].code.chars().count(), f.lines[0].raw.chars().count());
    }

    #[test]
    fn masks_nested_block_comment() {
        let f = tokenize("a /* x /* .unwrap() */ y */ b\nc");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.starts_with('a'));
        assert!(f.lines[0].code.ends_with('b'));
        assert_eq!(f.lines[1].code, "c");
    }

    #[test]
    fn masks_string_with_escapes() {
        let f = tokenize(r#"let s = "quote \" then .unwrap()"; s.len();"#);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("s.len()"));
    }

    #[test]
    fn masks_raw_string() {
        let f = tokenize("let s = r#\"has \" and .unwrap() inside\"#; done();");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("done()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_masked() {
        let f = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(!f.lines[0].code.contains("'x'"));
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let src = "let s = \"line one\nline .unwrap() two\";\nnext();";
        let f = tokenize(src);
        assert_eq!(f.lines.len(), 3);
        assert!(!f.lines[1].code.contains("unwrap"));
        assert_eq!(f.lines[2].code, "next();");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let f = tokenize(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn suppression_on_same_line_and_next_line() {
        let src = "x.unwrap(); // adas-lint: allow(R2, reason = \"checked above\")\n// adas-lint: allow(R4)\ny == 0.0;";
        let f = tokenize(src);
        assert!(f.is_suppressed(1, Rule::PanicFreedom));
        assert!(!f.is_suppressed(1, Rule::FloatHygiene));
        assert!(f.is_suppressed(3, Rule::FloatHygiene));
    }

    #[test]
    fn doc_comments_document_but_never_suppress() {
        let src = "/// Write `// adas-lint: allow(R2)` to excuse a site.\nx.unwrap();\n//! `adas-lint: allow(R2)` syntax reference\ny.unwrap();";
        let f = tokenize(src);
        assert!(f.suppressions.is_empty(), "{:?}", f.suppressions);
        assert!(!f.is_suppressed(2, Rule::PanicFreedom));
        assert!(!f.is_suppressed(4, Rule::PanicFreedom));
    }
}
