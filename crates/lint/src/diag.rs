//! The diagnostic model: rules, severities, and machine-readable output.

use std::fmt;

/// The safety invariants adas-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1 — public APIs of the safety-path crates must pass speeds,
    /// distances, angles, and accelerations as `units::` newtypes, not raw
    /// `f64`/`f32`.
    UnitSafety,
    /// R2 — no `unwrap()` / `expect()` / `panic!` / array indexing in
    /// non-test library code of the safety-path crates.
    PanicFreedom,
    /// R3 — direct writes to gas/brake/steer command fields only inside
    /// `openadas::safety`, `openadas::controls`, and the attack engine's
    /// designated mutation points.
    ActuatorContainment,
    /// R4 — no `==`/`!=` on floats and no NaN-unchecked
    /// `partial_cmp().unwrap()` in control code.
    FloatHygiene,
    /// R5 — no wall-clock time or entropy-seeded RNG construction outside
    /// the benchmark harness; everything else must stay replayable.
    Determinism,
    /// R6 — cross-file taint flow: attack values are clamped at birth,
    /// reach CAN bytes only through the audited `Injector` choke point,
    /// and the ADAS side never calls back into the attack crate.
    TaintFlow,
    /// R7 — transitive panic freedom: no call path from `Harness::step`
    /// reaches a panicking function, in any crate.
    TransitivePanic,
    /// R8 — no wildcard `_ =>` arms when matching the safety-critical
    /// enums (attack types, alerts, hazards); adding a variant must be a
    /// compile-time event, not a silently-ignored runtime one.
    EnumExhaustiveness,
    /// R9 — every value flowing into an actuator `encode` call is provably
    /// bounded (by interval abstract interpretation) within the physical
    /// limits declared in `units::limits`.
    EnvelopeSoundness,
    /// R10 — the literal thresholds of the runtime defenses (plausibility
    /// gates, CAN IDS, degradation escalation) are mutually consistent
    /// with the controller dynamics they guard.
    ThresholdConsistency,
    /// R11 — clamp hygiene: no provably-dead clamps, no inverted clamp
    /// bounds, and no possibly-NaN value on a path to actuation.
    ClampHygiene,
    /// R12 — lock discipline: the lock-order graph built from every
    /// `Mutex`/`Condvar` acquisition site reached via the call graph must
    /// be acyclic; no lock may be held across a pool submit/wait boundary;
    /// `Condvar::wait` only inside a predicate loop; every
    /// `.lock().expect(...)` covered by a documented poisoning policy.
    LockDiscipline,
    /// R13 — hot-path allocation freedom: no call path from the
    /// steady-state tick roots (`Harness::step`, `BatchHarness::step`)
    /// reaches an allocating std API, except provably-amortized
    /// buffer-reuse sites (`drain_into`-style).
    AllocFreedom,
    /// R14 — shared-state determinism: no shared mutable statics, no
    /// `OnceLock` initializers that read the environment, and campaign
    /// results merged by index, never by completion order.
    SharedStateDeterminism,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 14] = [
    Rule::UnitSafety,
    Rule::PanicFreedom,
    Rule::ActuatorContainment,
    Rule::FloatHygiene,
    Rule::Determinism,
    Rule::TaintFlow,
    Rule::TransitivePanic,
    Rule::EnumExhaustiveness,
    Rule::EnvelopeSoundness,
    Rule::ThresholdConsistency,
    Rule::ClampHygiene,
    Rule::LockDiscipline,
    Rule::AllocFreedom,
    Rule::SharedStateDeterminism,
];

impl Rule {
    /// Short identifier (`R1`…`R5`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnitSafety => "R1",
            Rule::PanicFreedom => "R2",
            Rule::ActuatorContainment => "R3",
            Rule::FloatHygiene => "R4",
            Rule::Determinism => "R5",
            Rule::TaintFlow => "R6",
            Rule::TransitivePanic => "R7",
            Rule::EnumExhaustiveness => "R8",
            Rule::EnvelopeSoundness => "R9",
            Rule::ThresholdConsistency => "R10",
            Rule::ClampHygiene => "R11",
            Rule::LockDiscipline => "R12",
            Rule::AllocFreedom => "R13",
            Rule::SharedStateDeterminism => "R14",
        }
    }

    /// Long kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitSafety => "unit-safety",
            Rule::PanicFreedom => "panic-freedom",
            Rule::ActuatorContainment => "actuator-containment",
            Rule::FloatHygiene => "float-hygiene",
            Rule::Determinism => "determinism",
            Rule::TaintFlow => "taint-flow",
            Rule::TransitivePanic => "transitive-panic",
            Rule::EnumExhaustiveness => "enum-exhaustiveness",
            Rule::EnvelopeSoundness => "envelope-soundness",
            Rule::ThresholdConsistency => "threshold-consistency",
            Rule::ClampHygiene => "clamp-hygiene",
            Rule::LockDiscipline => "lock-discipline",
            Rule::AllocFreedom => "alloc-freedom",
            Rule::SharedStateDeterminism => "shared-state-determinism",
        }
    }

    /// One-line description, shown by `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnitSafety => {
                "public APIs of safety-path crates take units:: newtypes, not raw f64"
            }
            Rule::PanicFreedom => {
                "no unwrap()/expect()/panic!/array-index in non-test safety-path library code"
            }
            Rule::ActuatorContainment => {
                "gas/brake/steer command fields written only in designated modules"
            }
            Rule::FloatHygiene => {
                "no float ==/!= and no NaN-unchecked partial_cmp().unwrap() in control code"
            }
            Rule::Determinism => {
                "no wall-clock time or entropy-seeded RNGs outside the bench harness"
            }
            Rule::TaintFlow => {
                "attack values clamped at birth and routed to CAN bytes only via the Injector choke point"
            }
            Rule::TransitivePanic => {
                "no call path from Harness::step reaches a panicking function, in any crate"
            }
            Rule::EnumExhaustiveness => {
                "no wildcard _ => arms when matching safety-critical enums"
            }
            Rule::EnvelopeSoundness => {
                "every actuator-bound value provably inside units::limits physical bounds"
            }
            Rule::ThresholdConsistency => {
                "defense thresholds (gates, IDS, degradation) consistent with controller dynamics"
            }
            Rule::ClampHygiene => {
                "no dead clamps, inverted clamp bounds, or possible-NaN on actuation paths"
            }
            Rule::LockDiscipline => {
                "acyclic lock order, no locks across pool submit/wait, Condvar::wait in predicate loops, documented poisoning policy"
            }
            Rule::AllocFreedom => {
                "no call path from the steady-state tick roots reaches an allocating std API"
            }
            Rule::SharedStateDeterminism => {
                "no mutable statics, env-reading OnceLock initializers, or completion-order campaign merges"
            }
        }
    }

    /// Parses `R2` / `r2` / `panic-freedom` style names.
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        ALL_RULES
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Gate-failing finding.
    Error,
    /// Hygiene finding (dead suppressions, stale baseline entries). Also
    /// fails the gate — rot in the suppression machinery is how real
    /// findings get hidden — but is reported under a distinct label so the
    /// two failure classes are distinguishable in output.
    Warning,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding at one site.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Violated rule.
    pub rule: Rule,
    /// Finding severity.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human explanation of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the compiler-style human form.
    pub fn render_human(&self) -> String {
        format!(
            "{}[{}/{}]: {}\n  --> {}:{}\n   | {}\n",
            self.severity.label(),
            self.rule.id(),
            self.rule.name(),
            self.message,
            self.file,
            self.line,
            self.snippet,
        )
    }

    /// Renders one JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"message\":\"{}\"}}",
            self.rule.id(),
            self.rule.name(),
            self.severity.label(),
            json_escape(&self.file),
            self.line,
            json_escape(&self.snippet),
            json_escape(&self.message),
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parse_roundtrip() {
        for r in ALL_RULES {
            assert_eq!(Rule::parse(r.id()), Some(r));
            assert_eq!(Rule::parse(r.name()), Some(r));
            assert_eq!(Rule::parse(&r.id().to_lowercase()), Some(r));
        }
        assert_eq!(Rule::parse("R15"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn human_render_contains_location() {
        let d = Diagnostic {
            rule: Rule::PanicFreedom,
            severity: Severity::Error,
            file: "crates/openadas/src/adas.rs".into(),
            line: 42,
            snippet: "x.unwrap()".into(),
            message: "`.unwrap()` in safety-path library code".into(),
        };
        let h = d.render_human();
        assert!(h.contains("error[R2/panic-freedom]"));
        assert!(h.contains("crates/openadas/src/adas.rs:42"));
    }
}
