//! The diagnostic model: rules, severities, and machine-readable output.

use std::fmt;

/// The safety invariants adas-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1 — public APIs of the safety-path crates must pass speeds,
    /// distances, angles, and accelerations as `units::` newtypes, not raw
    /// `f64`/`f32`.
    UnitSafety,
    /// R2 — no `unwrap()` / `expect()` / `panic!` / array indexing in
    /// non-test library code of the safety-path crates.
    PanicFreedom,
    /// R3 — direct writes to gas/brake/steer command fields only inside
    /// `openadas::safety`, `openadas::controls`, and the attack engine's
    /// designated mutation points.
    ActuatorContainment,
    /// R4 — no `==`/`!=` on floats and no NaN-unchecked
    /// `partial_cmp().unwrap()` in control code.
    FloatHygiene,
    /// R5 — no wall-clock time or entropy-seeded RNG construction outside
    /// the benchmark harness; everything else must stay replayable.
    Determinism,
    /// R6 — cross-file taint flow: attack values are clamped at birth,
    /// reach CAN bytes only through the audited `Injector` choke point,
    /// and the ADAS side never calls back into the attack crate.
    TaintFlow,
    /// R7 — transitive panic freedom: no call path from `Harness::step`
    /// reaches a panicking function, in any crate.
    TransitivePanic,
    /// R8 — no wildcard `_ =>` arms when matching the safety-critical
    /// enums (attack types, alerts, hazards); adding a variant must be a
    /// compile-time event, not a silently-ignored runtime one.
    EnumExhaustiveness,
    /// R9 — every value flowing into an actuator `encode` call is provably
    /// bounded (by interval abstract interpretation) within the physical
    /// limits declared in `units::limits`.
    EnvelopeSoundness,
    /// R10 — the literal thresholds of the runtime defenses (plausibility
    /// gates, CAN IDS, degradation escalation) are mutually consistent
    /// with the controller dynamics they guard.
    ThresholdConsistency,
    /// R11 — clamp hygiene: no provably-dead clamps, no inverted clamp
    /// bounds, and no possibly-NaN value on a path to actuation.
    ClampHygiene,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 11] = [
    Rule::UnitSafety,
    Rule::PanicFreedom,
    Rule::ActuatorContainment,
    Rule::FloatHygiene,
    Rule::Determinism,
    Rule::TaintFlow,
    Rule::TransitivePanic,
    Rule::EnumExhaustiveness,
    Rule::EnvelopeSoundness,
    Rule::ThresholdConsistency,
    Rule::ClampHygiene,
];

impl Rule {
    /// Short identifier (`R1`…`R5`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnitSafety => "R1",
            Rule::PanicFreedom => "R2",
            Rule::ActuatorContainment => "R3",
            Rule::FloatHygiene => "R4",
            Rule::Determinism => "R5",
            Rule::TaintFlow => "R6",
            Rule::TransitivePanic => "R7",
            Rule::EnumExhaustiveness => "R8",
            Rule::EnvelopeSoundness => "R9",
            Rule::ThresholdConsistency => "R10",
            Rule::ClampHygiene => "R11",
        }
    }

    /// Long kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitSafety => "unit-safety",
            Rule::PanicFreedom => "panic-freedom",
            Rule::ActuatorContainment => "actuator-containment",
            Rule::FloatHygiene => "float-hygiene",
            Rule::Determinism => "determinism",
            Rule::TaintFlow => "taint-flow",
            Rule::TransitivePanic => "transitive-panic",
            Rule::EnumExhaustiveness => "enum-exhaustiveness",
            Rule::EnvelopeSoundness => "envelope-soundness",
            Rule::ThresholdConsistency => "threshold-consistency",
            Rule::ClampHygiene => "clamp-hygiene",
        }
    }

    /// One-line description, shown by `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnitSafety => {
                "public APIs of safety-path crates take units:: newtypes, not raw f64"
            }
            Rule::PanicFreedom => {
                "no unwrap()/expect()/panic!/array-index in non-test safety-path library code"
            }
            Rule::ActuatorContainment => {
                "gas/brake/steer command fields written only in designated modules"
            }
            Rule::FloatHygiene => {
                "no float ==/!= and no NaN-unchecked partial_cmp().unwrap() in control code"
            }
            Rule::Determinism => {
                "no wall-clock time or entropy-seeded RNGs outside the bench harness"
            }
            Rule::TaintFlow => {
                "attack values clamped at birth and routed to CAN bytes only via the Injector choke point"
            }
            Rule::TransitivePanic => {
                "no call path from Harness::step reaches a panicking function, in any crate"
            }
            Rule::EnumExhaustiveness => {
                "no wildcard _ => arms when matching safety-critical enums"
            }
            Rule::EnvelopeSoundness => {
                "every actuator-bound value provably inside units::limits physical bounds"
            }
            Rule::ThresholdConsistency => {
                "defense thresholds (gates, IDS, degradation) consistent with controller dynamics"
            }
            Rule::ClampHygiene => {
                "no dead clamps, inverted clamp bounds, or possible-NaN on actuation paths"
            }
        }
    }

    /// Parses `R2` / `r2` / `panic-freedom` style names.
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        ALL_RULES
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Gate-failing finding.
    Error,
    /// Hygiene finding (dead suppressions, stale baseline entries). Also
    /// fails the gate — rot in the suppression machinery is how real
    /// findings get hidden — but is reported under a distinct label so the
    /// two failure classes are distinguishable in output.
    Warning,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding at one site.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Violated rule.
    pub rule: Rule,
    /// Finding severity.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human explanation of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the compiler-style human form.
    pub fn render_human(&self) -> String {
        format!(
            "{}[{}/{}]: {}\n  --> {}:{}\n   | {}\n",
            self.severity.label(),
            self.rule.id(),
            self.rule.name(),
            self.message,
            self.file,
            self.line,
            self.snippet,
        )
    }

    /// Renders one JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"message\":\"{}\"}}",
            self.rule.id(),
            self.rule.name(),
            self.severity.label(),
            json_escape(&self.file),
            self.line,
            json_escape(&self.snippet),
            json_escape(&self.message),
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parse_roundtrip() {
        for r in ALL_RULES {
            assert_eq!(Rule::parse(r.id()), Some(r));
            assert_eq!(Rule::parse(r.name()), Some(r));
            assert_eq!(Rule::parse(&r.id().to_lowercase()), Some(r));
        }
        assert_eq!(Rule::parse("R12"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn human_render_contains_location() {
        let d = Diagnostic {
            rule: Rule::PanicFreedom,
            severity: Severity::Error,
            file: "crates/openadas/src/adas.rs".into(),
            line: 42,
            snippet: "x.unwrap()".into(),
            message: "`.unwrap()` in safety-path library code".into(),
        };
        let h = d.render_human();
        assert!(h.contains("error[R2/panic-freedom]"));
        assert!(h.contains("crates/openadas/src/adas.rs:42"));
    }
}
