//! Per-file analysis cache under `target/adas-lint-cache`.
//!
//! Tokenizing + parsing dominates a scan, and both are pure functions of
//! one file's bytes — so each file's derived facts (raw local diagnostics,
//! suppression sites, function defs with their call/panic sites, enum
//! names) are cached keyed by an FNV-1a content hash. A warm run does no
//! parsing at all; the workspace-level rules (R6/R7) recompute from the
//! cached facts every time, which is graph traversal measured in
//! microseconds, not parsing.
//!
//! The format is a versioned, escaped, line-based text format written and
//! read with nothing but `std` — the lint keeps its zero-serde-dependency
//! property. Any read failure (missing file, version bump, hash mismatch,
//! corrupt line) falls back to recomputation; the cache can never change a
//! scan's *result*, only its wall-time.

use crate::diag::{Diagnostic, Rule, Severity};
use crate::parser::{Call, Callee, FnDef, LockEvent, LockOp, PanicSite};
use std::path::{Path, PathBuf};

/// Bumped whenever the cached shape or any rule logic that feeds it
/// changes; stale versions are recomputed, never migrated. (v2: doc
/// comments no longer parse as suppression sites. v3: entries are keyed by
/// [`scan_key`] — content hash mixed with the scan-configuration
/// fingerprint — so a cache written under one rule set is never served to
/// a scan running a different one. v4: fn entries carry macro and
/// lock-event facts for the concurrency/alloc layer, R12–R14. v5: the
/// campaignd crate joined the scan scope and the R7 root set — scope
/// tables are not part of the config fingerprint, so the version bump is
/// what invalidates verdicts computed under the old scope.)
pub const FORMAT_VERSION: u32 = 5;

/// Flattened R12–R14 rule tables, folded into the config fingerprint:
/// editing a lock-boundary, merge-sink, or allocating-API table must
/// invalidate the warm cache exactly as toggling a rule does, or a table
/// edit would be served stale verdicts until the next unrelated content
/// change.
fn concurrency_tables() -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.extend(crate::locks::BOUNDARY_FNS.iter().map(|s| s.to_string()));
    parts.extend(crate::locks::MERGE_SINKS.iter().map(|s| s.to_string()));
    parts.extend(crate::allocpath::R13_ROOTS.iter().map(|s| s.to_string()));
    parts.extend(crate::allocpath::ALLOC_METHODS.iter().map(|s| s.to_string()));
    parts.extend(
        crate::allocpath::ALLOC_PATHS
            .iter()
            .map(|(t, m)| format!("{t}::{m}")),
    );
    parts.extend(crate::allocpath::ALLOC_MACROS.iter().map(|s| s.to_string()));
    parts.extend(crate::allocpath::AMORTIZED_FNS.iter().map(|s| s.to_string()));
    parts.join("|")
}

/// Fingerprint of everything *besides* file content that determines a
/// per-file analysis: the cache format version, the active rule set, and
/// the R12–R14 rule tables. Rule ids are sorted and deduplicated so
/// spelling order on the command line cannot split the cache.
pub fn config_fingerprint(rules: &[Rule]) -> u64 {
    let mut ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    content_hash(format!("v{FORMAT_VERSION};{};{}", ids.join(","), concurrency_tables()).as_bytes())
}

/// The key a cache entry is stored and looked up under. Mixing (rather
/// than, say, XOR-ing) via SplitMix64 avalanches both inputs, so a content
/// edit and a compensating config change cannot collide.
pub fn scan_key(content: u64, config: u64) -> u64 {
    platform::experiment::mix_seed(content, &[config])
}

/// One inline suppression site, as the workspace pass needs it.
#[derive(Debug, Clone, PartialEq)]
pub struct SuppressionSite {
    /// 1-based line the suppression applies to.
    pub line: usize,
    /// Covered rules; empty means all.
    pub rules: Vec<Rule>,
}

/// Everything the workspace pass needs from one file — the unit of
/// caching.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// Raw local findings (R1–R5, R8), before suppression filtering.
    pub raw_diags: Vec<Diagnostic>,
    /// Inline suppression sites.
    pub suppressions: Vec<SuppressionSite>,
    /// Function definitions with call/panic/macro/lock facts (`fields`
    /// dropped — nothing downstream needs them; macros and lock events
    /// survive because the workspace concurrency layer consumes them).
    pub fns: Vec<FnDef>,
    /// Enum names declared in the file.
    pub enums: Vec<String>,
}

/// 64-bit FNV-1a over the file bytes.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache file path for a workspace-relative source path.
pub fn entry_path(cache_dir: &Path, rel: &str) -> PathBuf {
    cache_dir.join(format!("{}.facts", rel.replace('/', "__")))
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Serializes one file's analysis.
pub fn serialize(rel: &str, hash: u64, a: &FileAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&format!("adas-lint-cache {FORMAT_VERSION}\n"));
    out.push_str(&format!("file\t{}\n", esc(rel)));
    out.push_str(&format!("hash\t{hash:016x}\n"));
    for d in &a.raw_diags {
        out.push_str(&format!(
            "diag\t{}\t{}\t{}\t{}\t{}\t{}\n",
            d.rule.id(),
            d.severity.label(),
            d.line,
            esc(&d.snippet),
            esc(&d.message),
            esc(&d.file),
        ));
    }
    for s in &a.suppressions {
        let rules = if s.rules.is_empty() {
            "*".to_string()
        } else {
            s.rules.iter().map(|r| r.id()).collect::<Vec<_>>().join(",")
        };
        out.push_str(&format!("supp\t{}\t{rules}\n", s.line));
    }
    for f in &a.fns {
        out.push_str(&format!(
            "fn\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            esc(&f.name),
            esc(&f.qual),
            f.impl_type.as_deref().map_or("-".to_string(), esc),
            u8::from(f.is_pub),
            u8::from(f.is_test),
            f.line,
            esc(&f.ret),
        ));
        for c in &f.calls {
            let (kind, prefix, name) = match &c.callee {
                Callee::Free(n) => ("F", "-".to_string(), n.clone()),
                Callee::Method(n) => ("M", "-".to_string(), n.clone()),
                Callee::Path(p, n) => ("P", p.clone(), n.clone()),
            };
            out.push_str(&format!(
                "call\t{}\t{kind}\t{}\t{}\n",
                c.line,
                esc(&prefix),
                esc(&name)
            ));
        }
        for p in &f.panics {
            out.push_str(&format!("panic\t{}\t{}\n", p.line, esc(&p.what)));
        }
        for (line, name) in &f.macros {
            out.push_str(&format!("macro\t{line}\t{}\n", esc(name)));
        }
        for l in &f.locks {
            let op = match l.op {
                LockOp::Acquire => "A",
                LockOp::CondWait => "W",
                LockOp::GuardedCall => "C",
            };
            // Held names are identifiers, so a comma-joined list is
            // unambiguous; `-` marks the empty set.
            let held = if l.held.is_empty() {
                "-".to_string()
            } else {
                l.held.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
            };
            let flags = u8::from(l.expect) | (u8::from(l.in_loop) << 1) | (u8::from(l.method) << 2);
            out.push_str(&format!(
                "lockev\t{}\t{op}\t{}\t{held}\t{flags}\n",
                l.line,
                esc(&l.what)
            ));
        }
    }
    for e in &a.enums {
        out.push_str(&format!("enum\t{}\n", esc(e)));
    }
    out
}

/// Deserializes a cache entry, validating version, path, and hash.
/// Returns `None` on any mismatch or parse problem.
pub fn deserialize(text: &str, rel: &str, hash: u64) -> Option<FileAnalysis> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("adas-lint-cache {FORMAT_VERSION}") {
        return None;
    }
    let file_line = lines.next()?;
    if file_line.strip_prefix("file\t").map(unesc)? != rel {
        return None;
    }
    let hash_line = lines.next()?;
    let stored = u64::from_str_radix(hash_line.strip_prefix("hash\t")?, 16).ok()?;
    if stored != hash {
        return None;
    }

    let mut a = FileAnalysis::default();
    for line in lines {
        let mut parts = line.split('\t');
        match parts.next()? {
            "diag" => {
                let rule = Rule::parse(parts.next()?)?;
                let severity = match parts.next()? {
                    "error" => Severity::Error,
                    "warning" => Severity::Warning,
                    _ => return None,
                };
                let line_no: usize = parts.next()?.parse().ok()?;
                let snippet = unesc(parts.next()?);
                let message = unesc(parts.next()?);
                let file = unesc(parts.next()?);
                a.raw_diags.push(Diagnostic {
                    rule,
                    severity,
                    file,
                    line: line_no,
                    snippet,
                    message,
                });
            }
            "supp" => {
                let line_no: usize = parts.next()?.parse().ok()?;
                let spec = parts.next()?;
                let rules = if spec == "*" {
                    Vec::new()
                } else {
                    spec.split(',').map(Rule::parse).collect::<Option<Vec<_>>>()?
                };
                a.suppressions.push(SuppressionSite {
                    line: line_no,
                    rules,
                });
            }
            "fn" => {
                let name = unesc(parts.next()?);
                let qual = unesc(parts.next()?);
                let impl_type = match parts.next()? {
                    "-" => None,
                    t => Some(unesc(t)),
                };
                let is_pub = parts.next()? == "1";
                let is_test = parts.next()? == "1";
                let line_no: usize = parts.next()?.parse().ok()?;
                let ret = unesc(parts.next()?);
                a.fns.push(FnDef {
                    name,
                    qual,
                    impl_type,
                    is_pub,
                    is_test,
                    line: line_no,
                    ret,
                    calls: Vec::new(),
                    panics: Vec::new(),
                    fields: Vec::new(),
                    macros: Vec::new(),
                    locks: Vec::new(),
                });
            }
            "call" => {
                let line_no: usize = parts.next()?.parse().ok()?;
                let kind = parts.next()?;
                let prefix = unesc(parts.next()?);
                let name = unesc(parts.next()?);
                let callee = match kind {
                    "F" => Callee::Free(name),
                    "M" => Callee::Method(name),
                    "P" => Callee::Path(prefix, name),
                    _ => return None,
                };
                a.fns.last_mut()?.calls.push(Call {
                    line: line_no,
                    callee,
                });
            }
            "panic" => {
                let line_no: usize = parts.next()?.parse().ok()?;
                let what = unesc(parts.next()?);
                a.fns.last_mut()?.panics.push(PanicSite {
                    line: line_no,
                    what,
                });
            }
            "macro" => {
                let line_no: usize = parts.next()?.parse().ok()?;
                let name = unesc(parts.next()?);
                a.fns.last_mut()?.macros.push((line_no, name));
            }
            "lockev" => {
                let line_no: usize = parts.next()?.parse().ok()?;
                let op = match parts.next()? {
                    "A" => LockOp::Acquire,
                    "W" => LockOp::CondWait,
                    "C" => LockOp::GuardedCall,
                    _ => return None,
                };
                let what = unesc(parts.next()?);
                let held_spec = parts.next()?;
                let held = if held_spec == "-" {
                    Vec::new()
                } else {
                    held_spec.split(',').map(unesc).collect()
                };
                let flags: u8 = parts.next()?.parse().ok()?;
                a.fns.last_mut()?.locks.push(LockEvent {
                    line: line_no,
                    op,
                    what,
                    held,
                    expect: flags & 1 != 0,
                    in_loop: flags & 2 != 0,
                    method: flags & 4 != 0,
                });
            }
            "enum" => {
                a.enums.push(unesc(parts.next()?));
            }
            _ => return None,
        }
    }
    Some(a)
}

/// Loads the cached analysis for `rel` if its stored hash matches `hash`.
pub fn load(cache_dir: &Path, rel: &str, hash: u64) -> Option<FileAnalysis> {
    let text = std::fs::read_to_string(entry_path(cache_dir, rel)).ok()?;
    deserialize(&text, rel, hash)
}

/// Stores the analysis; failures are silently ignored (the cache is an
/// optimization, never a requirement).
pub fn store(cache_dir: &Path, rel: &str, hash: u64, a: &FileAnalysis) {
    if std::fs::create_dir_all(cache_dir).is_err() {
        return;
    }
    let _ = std::fs::write(entry_path(cache_dir, rel), serialize(rel, hash, a));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FileAnalysis {
        FileAnalysis {
            raw_diags: vec![Diagnostic {
                rule: Rule::PanicFreedom,
                severity: Severity::Error,
                file: "crates/a/src/lib.rs".into(),
                line: 3,
                snippet: "x.unwrap()\twith tab".into(),
                message: "panics\nbadly".into(),
            }],
            suppressions: vec![
                SuppressionSite {
                    line: 7,
                    rules: vec![Rule::UnitSafety, Rule::FloatHygiene],
                },
                SuppressionSite {
                    line: 9,
                    rules: Vec::new(),
                },
            ],
            fns: vec![FnDef {
                name: "step".into(),
                qual: "Harness::step".into(),
                impl_type: Some("Harness".into()),
                is_pub: true,
                is_test: false,
                line: 10,
                ret: "Result < ( ) , E >".into(),
                calls: vec![
                    Call {
                        line: 11,
                        callee: Callee::Method("observe".into()),
                    },
                    Call {
                        line: 12,
                        callee: Callee::Path("canbus".into(), "rewrite_signal".into()),
                    },
                ],
                panics: vec![PanicSite {
                    line: 13,
                    what: ".expect()".into(),
                }],
                fields: Vec::new(),
                macros: vec![(14, "format".into())],
                locks: vec![
                    LockEvent {
                        line: 15,
                        op: LockOp::Acquire,
                        what: "queues".into(),
                        held: Vec::new(),
                        expect: true,
                        in_loop: false,
                        method: true,
                    },
                    LockEvent {
                        line: 16,
                        op: LockOp::GuardedCall,
                        what: "steal".into(),
                        held: vec!["queues".into(), "state".into()],
                        expect: false,
                        in_loop: false,
                        method: true,
                    },
                    LockEvent {
                        line: 17,
                        op: LockOp::CondWait,
                        what: "done_cv".into(),
                        held: vec!["done".into()],
                        expect: false,
                        in_loop: true,
                        method: true,
                    },
                ],
            }],
            enums: vec!["AttackType".into()],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let a = sample();
        let text = serialize("crates/a/src/lib.rs", 0xdead_beef, &a);
        let b = deserialize(&text, "crates/a/src/lib.rs", 0xdead_beef).expect("roundtrip");
        assert_eq!(b.raw_diags.len(), 1);
        assert_eq!(b.raw_diags[0].snippet, "x.unwrap()\twith tab");
        assert_eq!(b.raw_diags[0].message, "panics\nbadly");
        assert_eq!(b.suppressions, a.suppressions);
        assert_eq!(b.fns.len(), 1);
        assert_eq!(b.fns[0].qual, "Harness::step");
        assert_eq!(b.fns[0].calls.len(), 2);
        assert_eq!(b.fns[0].panics[0].what, ".expect()");
        assert_eq!(b.fns[0].macros, vec![(14, "format".to_string())]);
        assert_eq!(b.fns[0].locks.len(), 3);
        assert_eq!(b.fns[0].locks[0].op, LockOp::Acquire);
        assert!(b.fns[0].locks[0].expect);
        assert_eq!(
            b.fns[0].locks[1].held,
            vec!["queues".to_string(), "state".to_string()]
        );
        assert_eq!(b.fns[0].locks[2].op, LockOp::CondWait);
        assert!(b.fns[0].locks[2].in_loop);
        assert_eq!(b.enums, vec!["AttackType".to_string()]);
    }

    #[test]
    fn mismatched_hash_or_version_rejected() {
        let a = sample();
        let text = serialize("crates/a/src/lib.rs", 1, &a);
        assert!(deserialize(&text, "crates/a/src/lib.rs", 2).is_none());
        assert!(deserialize(&text, "crates/b/src/lib.rs", 1).is_none());
        let bumped = text.replace(
            &format!("adas-lint-cache {FORMAT_VERSION}"),
            "adas-lint-cache 0",
        );
        assert!(deserialize(&bumped, "crates/a/src/lib.rs", 1).is_none());
    }

    #[test]
    fn corrupt_entry_rejected() {
        let a = sample();
        let mut text = serialize("crates/a/src/lib.rs", 1, &a);
        text.push_str("garbage line without a known tag\n");
        assert!(deserialize(&text, "crates/a/src/lib.rs", 1).is_none());
    }

    #[test]
    fn config_fingerprint_is_order_insensitive_but_set_sensitive() {
        let all = crate::diag::ALL_RULES.to_vec();
        let mut reversed = all.clone();
        reversed.reverse();
        assert_eq!(config_fingerprint(&all), config_fingerprint(&reversed));
        let subset = vec![Rule::PanicFreedom, Rule::FloatHygiene];
        assert_ne!(config_fingerprint(&all), config_fingerprint(&subset));
    }

    #[test]
    fn scan_key_separates_configs_for_same_content() {
        let content = content_hash(b"fn f() {}");
        let a = scan_key(content, config_fingerprint(&crate::diag::ALL_RULES));
        let b = scan_key(content, config_fingerprint(&[Rule::PanicFreedom]));
        assert_ne!(a, b);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so a refactor cannot silently change hashing (which would
        // invalidate every cache entry without a version bump).
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
