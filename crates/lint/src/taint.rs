//! R6: taint flow — the static proof of the paper's safety-envelope
//! invariant.
//!
//! The paper's attack works because corrupted actuator values stay
//! *inside* the ADAS safety checks (Eq. 1's acceleration envelope, the
//! steering-angle limit). The runtime system enforces that envelope in
//! three places; R6 proves statically that no refactor can route around
//! them. It decomposes into three obligations over the call graph:
//!
//! * **R6a — clamped at birth.** Every function defined in the taint
//!   origin module (`crates/core/src/corruption.rs`) whose return type
//!   mentions [`ATTACK_VALUES_TYPE`] must itself call a clamp from
//!   [`CLAMP_FNS`]. Attack values must be inside the envelope from the
//!   moment they exist — this is the lint-shaped form of the paper's
//!   "strategic values satisfy the safety check" precondition.
//!
//! * **R6b — audited choke point.** Every call path from attack-core
//!   library code to a CAN-bytes sink ([`SINK_FNS`]) must pass through the
//!   injector choke set ([`CHOKE_FNS`]). Concretely: after deleting the
//!   choke functions from the graph, no attack function may still reach a
//!   sink. Violations are reported with the full flow chain.
//!
//! * **R6c — no back-flow.** The ADAS side (`openadas`) must never call
//!   into attack-core: the victim consuming attacker APIs would dissolve
//!   the trust boundary the whole reproduction measures. Checked both at
//!   the manifest level (dependency edge) and the call-graph level.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Rule, Severity};
use crate::symbols::SymbolTable;
use std::collections::{HashMap, VecDeque};

/// Module whose functions mint attack values.
pub const TAINT_ORIGIN_FILE: &str = "crates/core/src/corruption.rs";
/// The type carrying corrupted actuator commands.
pub const ATTACK_VALUES_TYPE: &str = "AttackValues";
/// Safety-layer clamps that bound a value into the envelope. The bare
/// `clamp` covers `f64::clamp` against the strategic-value constants.
pub const CLAMP_FNS: [&str; 3] = ["clamp", "clamp_accel", "clamp_steer"];
/// Functions that turn values into CAN frame bytes (the actuator bus).
pub const SINK_FNS: [(&str, &str); 4] = [
    ("CommandEncoder", "encode"),
    ("CommandEncoder", "encode_into"),
    ("Encoder", "encode"),
    ("", "rewrite_signal"),
];
/// The audited injection choke point: the only sanctioned route from
/// attack values to frame bytes.
pub const CHOKE_FNS: [(&str, &str); 3] = [
    ("Injector", "apply"),
    ("Injector", "apply_all"),
    ("Injector", "apply_in_place"),
];
/// The attacker crate (directory name) whose flows R6b polices.
pub const ATTACK_CRATE: &str = "core";
/// The victim crate R6c protects from back-flow.
pub const ADAS_CRATE: &str = "openadas";

/// Whether a symbol is one of the configured sinks.
fn is_sink(table: &SymbolTable, id: usize) -> bool {
    let s = &table.symbols[id];
    SINK_FNS.iter().any(|(ty, name)| {
        s.name == *name
            && (ty.is_empty() && s.impl_type.is_none()
                || s.impl_type.as_deref() == Some(*ty))
    })
}

/// Whether a symbol is part of the injection choke set.
fn is_choke(table: &SymbolTable, id: usize) -> bool {
    let s = &table.symbols[id];
    CHOKE_FNS
        .iter()
        .any(|(ty, name)| s.name == *name && s.impl_type.as_deref() == Some(*ty))
}

/// Runs all three R6 obligations.
pub fn r6_taint_flow(table: &SymbolTable, graph: &CallGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    r6a_clamped_at_birth(table, graph, &mut out);
    r6b_choke_point(table, graph, &mut out);
    r6c_no_backflow(table, graph, &mut out);
    out
}

/// R6a: taint-origin functions returning attack values must clamp.
fn r6a_clamped_at_birth(table: &SymbolTable, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    for s in &table.symbols {
        if s.is_test || s.file != TAINT_ORIGIN_FILE || !s.ret.contains(ATTACK_VALUES_TYPE) {
            continue;
        }
        // Direct containment: the minting function itself must clamp —
        // "somewhere downstream" is not a proof that the value was bounded
        // before it escaped.
        let clamps = calls_any_clamp(table, graph, s.id);
        if !clamps {
            out.push(Diagnostic {
                rule: Rule::TaintFlow,
                severity: Severity::Error,
                file: s.file.clone(),
                line: s.line,
                snippet: format!("fn {} -> {}", s.qual, s.ret),
                message: format!(
                    "`{}` mints `{ATTACK_VALUES_TYPE}` without calling a safety clamp \
                     ({}); strategic attack values must be inside the paper's Eq. 1 \
                     envelope from birth",
                    s.qual,
                    CLAMP_FNS.join("/"),
                ),
            });
        }
    }
}

/// Whether symbol `id`'s body contains a call to any clamp function.
fn calls_any_clamp(table: &SymbolTable, graph: &CallGraph, id: usize) -> bool {
    // The graph stores resolved edges; clamp calls on `f64` resolve to
    // nothing, so consult the raw call list kept alongside the edges.
    graph.raw_calls[id]
        .iter()
        .any(|name| CLAMP_FNS.contains(&name.as_str()))
        || graph.edges[id]
            .iter()
            .any(|&t| CLAMP_FNS.contains(&table.symbols[t].name.as_str()))
}

/// R6b: with the choke set deleted, no attack-core function may reach a
/// sink.
fn r6b_choke_point(table: &SymbolTable, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    // BFS over the graph minus choke nodes, from every non-test
    // attack-core function that is not itself part of the choke set.
    let sources: Vec<usize> = table
        .symbols
        .iter()
        .filter(|s| {
            s.crate_name == ATTACK_CRATE
                && !s.is_test
                && !is_choke(table, s.id)
                && s.file.contains("/src/")
        })
        .map(|s| s.id)
        .collect();
    if sources.is_empty() {
        return;
    }

    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in &sources {
        if parent.insert(s, s).is_none() {
            queue.push_back(s);
        }
    }
    let mut hits: Vec<usize> = Vec::new();
    while let Some(cur) = queue.pop_front() {
        // Sinks are terminal for the walk; a root cannot be a sink because
        // sinks live outside attack-core.
        if is_sink(table, cur) {
            hits.push(cur);
            continue;
        }
        for &next in &graph.edges[cur] {
            if table.symbols[next].is_test || is_choke(table, next) {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next) {
                e.insert(cur);
                queue.push_back(next);
            }
        }
    }
    hits.sort_unstable();
    hits.dedup();
    for sink in hits {
        let chain = graph.chain(table, &parent, sink).join(" → ");
        let origin = {
            // Walk back to the originating attack-core function.
            let mut cur = sink;
            while let Some(&p) = parent.get(&cur) {
                if p == cur {
                    break;
                }
                cur = p;
            }
            cur
        };
        let o = &table.symbols[origin];
        out.push(Diagnostic {
            rule: Rule::TaintFlow,
            severity: Severity::Error,
            file: o.file.clone(),
            line: o.line,
            snippet: format!("fn {}", o.qual),
            message: format!(
                "attack value can reach CAN bytes without passing the audited \
                 `Injector` choke point; flow chain: {chain}. Route the write \
                 through Injector::apply/apply_all/apply_in_place",
            ),
        });
    }
}

/// R6c: `openadas` must not call into attack-core (manifest edge or
/// resolved call edge).
fn r6c_no_backflow(table: &SymbolTable, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    for s in &table.symbols {
        if s.crate_name != ADAS_CRATE || s.is_test {
            continue;
        }
        for &t in &graph.edges[s.id] {
            let target = &table.symbols[t];
            if target.crate_name == ATTACK_CRATE {
                out.push(Diagnostic {
                    rule: Rule::TaintFlow,
                    severity: Severity::Error,
                    file: s.file.clone(),
                    line: s.line,
                    snippet: format!("fn {} calls {}", s.qual, target.qual),
                    message: format!(
                        "ADAS code calls into the attack crate (`{}` → `{}`); the \
                         victim consuming attacker APIs dissolves the trust boundary \
                         the reproduction measures",
                        s.qual, target.qual
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::symbols::{parse_files, SymbolTable};

    fn analyze(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files = parse_files(sources);
        let table = SymbolTable::build(&files, None);
        let graph = CallGraph::build(&files, &table);
        r6_taint_flow(&table, &graph)
    }

    #[test]
    fn r6a_unclamped_minting_fires_and_clamped_passes() {
        let bad = analyze(&[(
            "crates/core/src/corruption.rs",
            "impl CorruptionPolicy { pub fn values(&self) -> AttackValues { AttackValues::max() } }\n",
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("mints"));

        let good = analyze(&[(
            "crates/core/src/corruption.rs",
            "impl CorruptionPolicy { pub fn values(&self) -> AttackValues { let h = x.clamp(0.0, cap); AttackValues::from(h) } }\n",
        )]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r6b_bypass_fires_with_chain_and_choked_path_passes() {
        // Direct attack→encoder path without the Injector choke.
        let bad = analyze(&[
            (
                "crates/core/src/engine.rs",
                "impl AttackEngine { pub fn emit(&mut self) { shortcut(); } }\npub fn shortcut() { rewrite_signal(1, 2); }\n",
            ),
            (
                "crates/canbus/src/codec.rs",
                "pub fn rewrite_signal(a: u8, b: u8) {}\n",
            ),
        ]);
        assert!(!bad.is_empty(), "{bad:?}");
        assert!(
            bad[0].message.contains("AttackEngine::emit → shortcut → rewrite_signal")
                || bad.iter().any(|d| d.message.contains("shortcut → rewrite_signal")),
            "{bad:?}"
        );

        // Same reach, but through Injector::apply: clean.
        let good = analyze(&[
            (
                "crates/core/src/engine.rs",
                "impl AttackEngine { pub fn emit(&mut self, inj: &mut Injector) { inj.apply_all(frames, &values); } }\n",
            ),
            (
                "crates/core/src/injector.rs",
                "impl Injector { pub fn apply_all(&mut self) { self.apply(); } pub fn apply(&mut self) { rewrite_signal(1, 2); } }\n",
            ),
            (
                "crates/canbus/src/codec.rs",
                "pub fn rewrite_signal(a: u8, b: u8) {}\n",
            ),
        ]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r6c_backflow_fires() {
        let d = analyze(&[
            (
                "crates/openadas/src/adas.rs",
                "impl Adas { pub fn step(&mut self) { attack_helper(); } }\n",
            ),
            (
                "crates/core/src/engine.rs",
                "pub fn attack_helper() {}\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("trust boundary"));
    }
}
