//! `adas-lint` — workspace-native safety-invariant static analysis.
//!
//! The paper this workspace reproduces (Zhou et al., DSN 2022) shows that
//! ADAS attacks succeed precisely by keeping corrupted values *inside* the
//! safety-check envelope, so the reproduction's own safety layer, unit
//! handling, and determinism guarantees are machine-checked rather than
//! convention-checked. Five rules run over every workspace `.rs` file:
//!
//! | Rule | Name                  | Invariant                                            |
//! |------|-----------------------|------------------------------------------------------|
//! | R1   | `unit-safety`         | public APIs use `units::` newtypes, not raw `f64`    |
//! | R2   | `panic-freedom`       | no `unwrap`/`expect`/`panic!`/indexing in safety path|
//! | R3   | `actuator-containment`| actuator command writes only in designated modules   |
//! | R4   | `float-hygiene`       | no float `==`, no NaN-unchecked `partial_cmp`        |
//! | R5   | `determinism`         | no wall clock / entropy RNGs outside the bench rig   |
//!
//! Findings can be acknowledged two ways: an inline
//! `// adas-lint: allow(<rule>, reason = "…")` comment for sites that are
//! correct by construction, or the checked-in `lint-baseline.txt` for
//! grandfathered code. Everything else fails the build: the
//! `tests/lint_clean.rs` integration test runs the scan under `cargo test`.

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

pub mod baseline;
pub mod diag;
pub mod rules;
pub mod scope;
pub mod tokenizer;

pub use baseline::{Baseline, BaselineEntry};
pub use diag::{Diagnostic, Rule, Severity, ALL_RULES};
pub use scope::{classify, FileInfo, FileKind};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, vendored dep shims (not our
/// code), VCS internals, and the lint's own deliberately-violating test
/// fixtures.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", ".github", "fixtures"];

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Findings that survived inline suppressions and the baseline.
    pub active: Vec<Diagnostic>,
    /// Findings absorbed by the baseline file.
    pub baselined: usize,
    /// Findings absorbed by inline `allow` comments.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Baseline entries that matched nothing (stale).
    pub unused_baseline: Vec<BaselineEntry>,
}

/// Scans one source text as if it lived at `rel_path`. No baseline is
/// applied; inline suppressions are honored. This is the entry point the
/// tests use to prove rules fire.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let info = classify(rel_path);
    let file = tokenizer::tokenize(source);
    rules::check_file(&info, &file)
}

/// Collects every scannable `.rs` file under `root`, workspace-relative,
/// sorted for deterministic output.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans the whole workspace, applying `baseline` if given.
pub fn scan_workspace(root: &Path, mut baseline: Option<Baseline>) -> io::Result<ScanReport> {
    let mut report = ScanReport::default();
    for rel in collect_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let info = classify(&rel);
        let file = tokenizer::tokenize(&source);
        let diags = rules::check_file(&info, &file);
        report.suppressed += rules::count_suppressed(&info, &file);
        report.files_scanned += 1;
        for d in diags {
            if baseline.as_mut().is_some_and(|b| b.matches(&d)) {
                report.baselined += 1;
            } else {
                report.active.push(d);
            }
        }
    }
    if let Some(b) = baseline {
        report.unused_baseline = b.unused();
    }
    report
        .active
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Default baseline location: `lint-baseline.txt` at the workspace root.
pub fn default_baseline_path(root: &Path) -> PathBuf {
    root.join("lint-baseline.txt")
}

/// Loads the baseline at `path`; a missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Locates the workspace root from the lint crate's own manifest dir —
/// used by the integration tests so `cargo test` works from any directory.
pub fn workspace_root_from_manifest(manifest_dir: &str) -> PathBuf {
    Path::new(manifest_dir)
        .ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_fires_on_injected_violation() {
        let d = scan_source(
            "crates/openadas/src/injected.rs",
            "pub fn set(&mut self, speed: f64) { self.v.unwrap(); }\n",
        );
        assert!(d.iter().any(|d| d.rule == Rule::UnitSafety));
        assert!(d.iter().any(|d| d.rule == Rule::PanicFreedom));
    }

    #[test]
    fn workspace_root_resolution() {
        let root = workspace_root_from_manifest("/a/b/crates/lint");
        assert_eq!(root, Path::new("/a/b"));
    }
}
