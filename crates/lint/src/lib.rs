//! `adas-lint` — workspace-native safety-invariant static analysis.
//!
//! The paper this workspace reproduces (Zhou et al., DSN 2022) shows that
//! ADAS attacks succeed precisely by keeping corrupted values *inside* the
//! safety-check envelope, so the reproduction's own safety layer, unit
//! handling, and determinism guarantees are machine-checked rather than
//! convention-checked. Fourteen rules run over every workspace `.rs` file:
//!
//! | Rule | Name                  | Invariant                                            |
//! |------|-----------------------|------------------------------------------------------|
//! | R1   | `unit-safety`         | public APIs use `units::` newtypes, not raw `f64`    |
//! | R2   | `panic-freedom`       | no `unwrap`/`expect`/`panic!`/indexing in safety path|
//! | R3   | `actuator-containment`| actuator command writes only in designated modules   |
//! | R4   | `float-hygiene`       | no float `==`, no NaN-unchecked `partial_cmp`        |
//! | R5   | `determinism`         | no wall clock / entropy RNGs outside the bench rig   |
//! | R6   | `taint-flow`          | attack values clamped at birth, sinks only via the   |
//! |      |                       | `Injector` choke point, no ADAS→attack back-flow     |
//! | R7   | `transitive-panic`    | no call path from `Harness::step` reaches a panic    |
//! | R8   | `enum-exhaustiveness` | no `_ =>` arms over safety-critical enums            |
//! | R9   | `envelope-soundness`  | values at actuator encode sinks provably inside the  |
//! |      |                       | physical limits (interval abstract interpretation)   |
//! | R10  | `threshold-consistency`| gate/IDS/escalation constants mutually consistent,  |
//! |      |                       | config constructors reproduce them bit-for-bit       |
//! | R11  | `clamp-hygiene`       | no inverted/dead clamps, no NaN reaching actuation   |
//! | R12  | `lock-discipline`     | acyclic lock order, no guards across pool boundaries,|
//! |      |                       | condvar waits in predicate loops, poisoning policy   |
//! | R13  | `alloc-freedom`       | steady-state tick roots reach no allocating std API  |
//! | R14  | `shared-state-determinism` | no `static mut`, no env-latching `OnceLock`,    |
//! |      |                       | campaign merges by index, never completion order     |
//!
//! The analysis is layered: the **lexical** layer (R1–R5, R8) runs over
//! masked lines; the **taint/callgraph** layer (R6/R7) over a parsed
//! symbol table and cross-file call graph ([`parser`], [`symbols`],
//! [`callgraph`], [`taint`]); the **numeric** layer (R9–R11) does interval
//! abstract interpretation over a lowered IR ([`ir`], [`interval`],
//! [`absint`]); and the **concurrency/alloc** layer (R12–R14) builds a
//! lock-order graph and a may-allocate closure over the same call graph
//! ([`locks`], [`allocpath`]). Per-file work is cached, keyed by content
//! hash mixed with the scan-configuration fingerprint ([`cache`]), and
//! fanned out across cores, so warm runs are sub-second.
//!
//! Findings can be acknowledged two ways: an inline
//! `// adas-lint: allow(<rule>, reason = "…")` comment for sites that are
//! correct by construction, or the checked-in `lint-baseline.txt` for
//! grandfathered code. Both are themselves checked: a suppression that
//! absorbs nothing and a baseline entry whose site is gone each fail the
//! gate. The `tests/lint_clean.rs` integration test runs the scan under
//! `cargo test`.

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

pub mod absint;
pub mod allocpath;
pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod diag;
pub mod interval;
pub mod ir;
pub mod locks;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod scope;
pub mod symbols;
pub mod taint;
pub mod tokenizer;

pub use baseline::{Baseline, BaselineEntry};
pub use diag::{Diagnostic, Rule, Severity, ALL_RULES};
pub use scope::{classify, FileInfo, FileKind};

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, vendored dep shims (not our
/// code), VCS internals, and the lint's own deliberately-violating test
/// fixtures.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", ".github", "fixtures"];

/// Knobs for a workspace scan.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Whether to read/write the per-file facts cache.
    pub use_cache: bool,
    /// Cache directory; `None` means [`default_cache_dir`].
    pub cache_dir: Option<PathBuf>,
    /// Whether to analyze files across worker threads.
    pub parallel: bool,
    /// Active rules; findings for other rules are not computed or
    /// reported. Part of the cache key — see [`cache::scan_key`].
    pub rules: Vec<Rule>,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            use_cache: true,
            cache_dir: None,
            parallel: true,
            rules: ALL_RULES.to_vec(),
        }
    }
}

impl ScanOptions {
    /// Whether every rule is active (subset scans skip the dead-suppression
    /// and stale-baseline checks, which only a full scan can judge).
    fn full_rule_set(&self) -> bool {
        cache::config_fingerprint(&self.rules) == cache::config_fingerprint(&ALL_RULES)
    }

    fn semantic_active(&self) -> bool {
        self.rules.iter().any(|r| {
            matches!(
                r,
                Rule::EnvelopeSoundness | Rule::ThresholdConsistency | Rule::ClampHygiene
            )
        })
    }

    fn concurrency_active(&self) -> bool {
        self.rules.iter().any(|r| {
            matches!(
                r,
                Rule::LockDiscipline | Rule::AllocFreedom | Rule::SharedStateDeterminism
            )
        })
    }
}

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Error findings that survived inline suppressions and the baseline.
    pub active: Vec<Diagnostic>,
    /// Findings absorbed by the baseline file.
    pub baselined: usize,
    /// Findings absorbed by inline `allow` comments.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// How many files were served from the facts cache.
    pub cache_hits: usize,
    /// Baseline entries that matched nothing (stale).
    pub unused_baseline: Vec<BaselineEntry>,
    /// Inline suppressions that absorbed nothing (dead), as warnings.
    pub dead_suppressions: Vec<Diagnostic>,
    /// GraphViz rendering of the R12 lock-order graph (empty when the
    /// concurrency layer did not run).
    pub lock_order_dot: String,
}

impl ScanReport {
    /// Whether the scan should gate the build: any active finding, dead
    /// suppression, or stale baseline entry fails.
    pub fn is_clean(&self) -> bool {
        self.active.is_empty() && self.dead_suppressions.is_empty() && self.unused_baseline.is_empty()
    }
}

/// Scans one source text as if it lived at `rel_path`. Per-file rules only
/// (R1–R5, R8); inline suppressions are honored, no baseline. This is the
/// entry point single-file tests use to prove rules fire.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let info = classify(rel_path);
    let file = tokenizer::tokenize(source);
    let facts = parser::parse(&file);
    let mut out = rules::local_rules(&info, &file, &facts);
    out.retain(|d| !file.is_suppressed(d.line, d.rule));
    out
}

/// Scans an in-memory multi-file set: per-file rules, the cross-file
/// R6/R7 analyses with the permissive crate closure (every crate sees
/// every other — there are no manifests to consult), and the semantic
/// R9–R11 layer over the files its scope covers. Inline suppressions are
/// honored, no baseline. This is how the fixture tests drive the
/// workspace rules without a workspace on disk.
pub fn scan_sources(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
    let mut parsed: Vec<(FileInfo, parser::FileFacts)> = Vec::new();
    let mut tokenized: Vec<tokenizer::SourceFile> = Vec::new();
    let mut semfiles: Vec<absint::SemFile> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    for (rel, text) in sources {
        let info = classify(rel);
        let file = tokenizer::tokenize(text);
        let facts = parser::parse(&file);
        out.extend(
            rules::local_rules(&info, &file, &facts)
                .into_iter()
                .filter(|d| !file.is_suppressed(d.line, d.rule)),
        );
        if scope::needs_ir(&info) {
            semfiles.push(absint::SemFile::new(
                info.rel.clone(),
                tokenizer::tokenize(text),
                scope::r9_applies(&info),
                scope::r11_applies(&info),
            ));
        }
        parsed.push((info, facts));
        tokenized.push(file);
    }
    let table = symbols::SymbolTable::build(&parsed, None);
    let graph = callgraph::CallGraph::build(&parsed, &table);
    let mut ws = taint::r6_taint_flow(&table, &graph);
    ws.extend(callgraph::r7_transitive_panic_freedom(&table, &graph));
    ws.extend(absint::semantic_rules(&semfiles));
    let (conc, _lock_graph) = locks::concurrency_rules(&parsed, &table, &graph);
    ws.extend(conc);
    ws.extend(allocpath::r13_alloc_freedom(&parsed, &table, &graph));
    for d in ws {
        let suppressed = parsed
            .iter()
            .position(|(info, _)| info.rel == d.file)
            .is_some_and(|i| tokenized[i].is_suppressed(d.line, d.rule));
        if !suppressed {
            out.push(d);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Collects every scannable `.rs` file under `root`, workspace-relative,
/// sorted for deterministic output.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Default facts-cache location, under the Cargo target dir so `cargo
/// clean` clears it too.
pub fn default_cache_dir(root: &Path) -> PathBuf {
    root.join("target").join("adas-lint-cache")
}

/// Scans the whole workspace with default options (cache on, parallel).
pub fn scan_workspace(root: &Path, baseline: Option<Baseline>) -> io::Result<ScanReport> {
    scan_workspace_with(root, baseline, &ScanOptions::default())
}

/// Scans the whole workspace: per-file rules (cached, parallel), then the
/// cross-file R6/R7 analyses over the assembled symbol table and call
/// graph, then suppression/baseline resolution with dead-entry detection.
pub fn scan_workspace_with(
    root: &Path,
    mut baseline: Option<Baseline>,
    opts: &ScanOptions,
) -> io::Result<ScanReport> {
    let rels = collect_files(root)?;
    let cache_dir = opts
        .cache_dir
        .clone()
        .unwrap_or_else(|| default_cache_dir(root));
    let cfg = cache::config_fingerprint(&opts.rules);
    let sem_active = opts.semantic_active();

    // Phase 1: per-file analysis — tokenize/parse/local rules, or a cache
    // hit keyed by content hash mixed with the scan configuration. Pure
    // per-file work, so it fans out. Semantic IR lowering rides along here
    // (it is also pure per-file work) but is cache-*independent*: the IR
    // holds borrows-free trees that are cheap to rebuild and expensive to
    // serialize, and the whole-program phase re-reads them every run
    // anyway — caching them could only add a staleness channel.
    type PerFile = (FileInfo, cache::FileAnalysis, bool, Option<absint::SemFile>);
    let analyze = |i: usize| -> io::Result<PerFile> {
        let rel = &rels[i];
        let source = fs::read_to_string(root.join(rel))?;
        let info = classify(rel);
        let key = cache::scan_key(cache::content_hash(source.as_bytes()), cfg);
        let sem = (sem_active && scope::needs_ir(&info)).then(|| {
            absint::SemFile::new(
                rel.clone(),
                tokenizer::tokenize(&source),
                scope::r9_applies(&info),
                scope::r11_applies(&info),
            )
        });
        if opts.use_cache {
            if let Some(a) = cache::load(&cache_dir, rel, key) {
                return Ok((info, a, true, sem));
            }
        }
        let mut a = rules::analyze_file(&info, &source);
        a.raw_diags.retain(|d| opts.rules.contains(&d.rule));
        if opts.use_cache {
            cache::store(&cache_dir, rel, key, &a);
        }
        Ok((info, a, false, sem))
    };
    let results: Vec<io::Result<PerFile>> = if opts.parallel {
        platform::experiment::run_parallel_map(rels.len(), analyze)
    } else {
        (0..rels.len()).map(analyze).collect()
    };

    let mut report = ScanReport::default();
    let mut analyses: Vec<(FileInfo, cache::FileAnalysis)> = Vec::with_capacity(results.len());
    let mut semfiles: Vec<absint::SemFile> = Vec::new();
    for r in results {
        let (info, a, hit, sem) = r?;
        report.files_scanned += 1;
        if hit {
            report.cache_hits += 1;
        }
        if let Some(s) = sem {
            semfiles.push(s);
        }
        analyses.push((info, a));
    }

    // Phase 2: workspace rules over the merged facts. Cheap (graph walks),
    // so it always recomputes — the cache can never stale a cross-file
    // result.
    let files: Vec<(FileInfo, parser::FileFacts)> = analyses
        .iter()
        .map(|(info, a)| {
            (
                info.clone(),
                parser::FileFacts {
                    fns: a.fns.clone(),
                    ..parser::FileFacts::default()
                },
            )
        })
        .collect();
    let deps = symbols::workspace_deps(root);
    let table = symbols::SymbolTable::build(&files, Some(&deps));
    let graph = callgraph::CallGraph::build(&files, &table);
    let mut workspace_diags = taint::r6_taint_flow(&table, &graph);
    workspace_diags.extend(callgraph::r7_transitive_panic_freedom(&table, &graph));
    if sem_active {
        workspace_diags.extend(absint::semantic_rules(&semfiles));
    }
    if opts.concurrency_active() {
        let (conc, lock_graph) = locks::concurrency_rules(&files, &table, &graph);
        workspace_diags.extend(conc);
        workspace_diags.extend(allocpath::r13_alloc_freedom(&files, &table, &graph));
        report.lock_order_dot = lock_graph.to_dot();
    }
    workspace_diags.retain(|d| opts.rules.contains(&d.rule));

    // Phase 3: suppression and baseline resolution, tracking which
    // suppressions actually earned their keep.
    let mut sites: Vec<(String, cache::SuppressionSite, bool)> = Vec::new();
    let mut sites_by_file: HashMap<&str, Vec<usize>> = HashMap::new();
    for (info, a) in &analyses {
        for s in &a.suppressions {
            sites_by_file
                .entry(info.rel.as_str())
                .or_default()
                .push(sites.len());
            sites.push((info.rel.clone(), s.clone(), false));
        }
    }

    let mut candidates: Vec<Diagnostic> = analyses
        .iter()
        .flat_map(|(_, a)| a.raw_diags.iter().cloned())
        .collect();
    candidates.extend(workspace_diags);
    for d in candidates {
        let mut absorbed = false;
        if let Some(idxs) = sites_by_file.get(d.file.as_str()) {
            for &i in idxs {
                let (_, site, used) = &mut sites[i];
                if site.line == d.line && (site.rules.is_empty() || site.rules.contains(&d.rule)) {
                    *used = true;
                    absorbed = true;
                    break;
                }
            }
        }
        if absorbed {
            report.suppressed += 1;
        } else if baseline.as_mut().is_some_and(|b| b.matches(&d)) {
            report.baselined += 1;
        } else {
            report.active.push(d);
        }
    }

    // Only a full scan can call a suppression dead or a baseline entry
    // stale: under `--rules` subsets, a finding the entry absorbs may
    // simply not have been computed this run.
    let full = opts.full_rule_set();
    for (file, site, used) in sites {
        if used || !full {
            continue;
        }
        let claimed = if site.rules.is_empty() {
            "all rules".to_string()
        } else {
            site.rules
                .iter()
                .map(|r| r.id())
                .collect::<Vec<_>>()
                .join(", ")
        };
        report.dead_suppressions.push(Diagnostic {
            // A blanket allow has no single rule to attribute; R2 is the
            // rule suppressions most commonly excuse.
            rule: site.rules.first().copied().unwrap_or(Rule::PanicFreedom),
            severity: Severity::Warning,
            file,
            line: site.line,
            snippet: format!("adas-lint: allow({claimed})"),
            message: format!(
                "dead suppression: the inline allow for {claimed} absorbs no \
                 finding — the code it excused is gone; remove the comment"
            ),
        });
    }

    if let Some(b) = baseline {
        if full {
            report.unused_baseline = b.unused();
        }
    }
    report
        .active
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .dead_suppressions
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Default baseline location: `lint-baseline.txt` at the workspace root.
pub fn default_baseline_path(root: &Path) -> PathBuf {
    root.join("lint-baseline.txt")
}

/// Loads the baseline at `path`; a missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Locates the workspace root from the lint crate's own manifest dir —
/// used by the integration tests so `cargo test` works from any directory.
pub fn workspace_root_from_manifest(manifest_dir: &str) -> PathBuf {
    Path::new(manifest_dir)
        .ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_fires_on_injected_violation() {
        let d = scan_source(
            "crates/openadas/src/injected.rs",
            "pub fn set(&mut self, speed: f64) { self.v.unwrap(); }\n",
        );
        assert!(d.iter().any(|d| d.rule == Rule::UnitSafety));
        assert!(d.iter().any(|d| d.rule == Rule::PanicFreedom));
    }

    #[test]
    fn scan_sources_runs_cross_file_rules() {
        let d = scan_sources(&[
            (
                "crates/platform/src/harness.rs",
                "pub struct Harness;\nimpl Harness { pub fn step(&mut self) { helper(); } }\n",
            ),
            (
                "crates/core/src/util.rs",
                "pub fn helper() { danger(); }\npub fn danger() { panic!(\"boom\"); }\n",
            ),
        ]);
        assert!(
            d.iter().any(|d| d.rule == Rule::TransitivePanic
                && d.message.contains("Harness::step → helper → danger")),
            "{d:?}"
        );
    }

    #[test]
    fn workspace_root_resolution() {
        let root = workspace_root_from_manifest("/a/b/crates/lint");
        assert_eq!(root, Path::new("/a/b"));
    }
}
