//! Per-crate symbol table and the crate-dependency closure.
//!
//! Call resolution is name-based (no type inference), so the one lever
//! that keeps it honest is *crate reachability*: a call written in crate
//! `X` can only resolve to functions defined in `X` or in crates `X`
//! depends on (transitively). Without this, `.update(…)` in the attack
//! engine would "reach" `Kalman1D::update` in `openadas` — a crate the
//! attack core cannot even link against — and every cross-file rule would
//! drown in phantom edges. The dependency graph is parsed straight out of
//! the workspace `Cargo.toml`s; in-memory scans (tests) fall back to a
//! permissive closure where every crate sees every other.

use crate::parser::FileFacts;
use crate::scope::{classify, FileInfo};
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// A function known to the workspace, with enough location data to report
/// findings and rebuild call chains.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Index into the flat symbol vector — the node id used by the call
    /// graph.
    pub id: usize,
    /// Bare name (`step`).
    pub name: String,
    /// Qualified name (`Harness::step` or the bare name).
    pub qual: String,
    /// `impl` type, if the function is a method.
    pub impl_type: Option<String>,
    /// Defining crate (directory name under `crates/`, or the root
    /// package placeholder).
    pub crate_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the definition is test-only.
    pub is_test: bool,
    /// Return-type text.
    pub ret: String,
}

/// The workspace-wide symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All function symbols, id-indexed.
    pub symbols: Vec<Symbol>,
    /// name → symbol ids (free fns and methods alike).
    by_name: HashMap<String, Vec<usize>>,
    /// (impl type, method name) → symbol ids.
    by_type_method: HashMap<(String, String), Vec<usize>>,
    /// crate → set of crates it can see (itself + transitive deps).
    closure: HashMap<String, HashSet<String>>,
    /// Whether an explicit dependency graph was supplied; without one the
    /// closure is permissive (every crate sees every crate).
    has_graph: bool,
}

impl SymbolTable {
    /// Builds the table from per-file facts. `deps` maps a crate to its
    /// *direct* workspace dependencies; pass `None` for the permissive
    /// closure.
    pub fn build(
        files: &[(FileInfo, FileFacts)],
        deps: Option<&HashMap<String, Vec<String>>>,
    ) -> Self {
        let mut t = SymbolTable {
            has_graph: deps.is_some(),
            ..SymbolTable::default()
        };
        for (info, facts) in files {
            for f in &facts.fns {
                let id = t.symbols.len();
                t.by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(ty) = &f.impl_type {
                    t.by_type_method
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                t.symbols.push(Symbol {
                    id,
                    name: f.name.clone(),
                    qual: f.qual.clone(),
                    impl_type: f.impl_type.clone(),
                    crate_name: info.crate_name.clone(),
                    file: info.rel.clone(),
                    line: f.line,
                    is_test: f.is_test,
                    ret: f.ret.clone(),
                });
            }
        }
        if let Some(deps) = deps {
            t.closure = transitive_closure(deps);
        }
        t
    }

    /// Whether `from` can call into `to` (same crate or dependency).
    pub fn crate_reaches(&self, from: &str, to: &str) -> bool {
        if from == to || !self.has_graph {
            return true;
        }
        self.closure.get(from).is_some_and(|s| s.contains(to))
    }

    /// Symbols a bare-name call from `from_crate` may target.
    pub fn resolve_name(&self, from_crate: &str, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        self.crate_reaches(from_crate, &self.symbols[id].crate_name)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Symbols a `Prefix::name(…)` call from `from_crate` may target: impl
    /// methods of `Prefix`, or — when the prefix is a module path like
    /// `canbus` — free functions named `name`.
    pub fn resolve_path(&self, from_crate: &str, prefix: &str, name: &str) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .by_type_method
            .get(&(prefix.to_string(), name.to_string()))
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        self.crate_reaches(from_crate, &self.symbols[id].crate_name)
                    })
                    .collect()
            })
            .unwrap_or_default();
        if out.is_empty() {
            // Module-qualified free fn (`canbus::rewrite_signal`): resolve
            // to free fns named `name`, preferring ones defined in the
            // crate the prefix names.
            out = self
                .resolve_name(from_crate, name)
                .into_iter()
                .filter(|&id| self.symbols[id].impl_type.is_none())
                .filter(|&id| {
                    let s = &self.symbols[id];
                    s.crate_name == prefix
                        || s.crate_name == prefix.replace('_', "-")
                        || !self.has_graph
                        || self.crate_reaches(from_crate, &s.crate_name)
                })
                .collect();
        }
        out
    }
}

/// Expands direct dependencies into the full reachability sets.
fn transitive_closure(deps: &HashMap<String, Vec<String>>) -> HashMap<String, HashSet<String>> {
    let mut out: HashMap<String, HashSet<String>> = HashMap::new();
    for name in deps.keys() {
        let mut seen: HashSet<String> = HashSet::new();
        let mut stack: Vec<&String> = vec![name];
        while let Some(cur) = stack.pop() {
            if let Some(ds) = deps.get(cur) {
                for d in ds {
                    if seen.insert(d.clone()) {
                        stack.push(d);
                    }
                }
            }
        }
        out.insert(name.clone(), seen);
    }
    out
}

/// Parses the workspace crate-dependency graph from `crates/*/Cargo.toml`
/// plus the root manifest. Keys and values are *directory* crate names
/// (`core`, not `attack-core`) so they line up with [`classify`]'s
/// `crate_name`; package-name aliases are translated.
pub fn workspace_deps(root: &Path) -> HashMap<String, Vec<String>> {
    let mut package_to_dir: HashMap<String, String> = HashMap::new();
    let mut raw: Vec<(String, Vec<String>)> = Vec::new();

    let mut manifests: Vec<(String, std::path::PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let p = e.path().join("Cargo.toml");
            if p.is_file() {
                manifests.push((e.file_name().to_string_lossy().into_owned(), p));
            }
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        manifests.push((crate::scope::ROOT_CRATE.to_string(), root_manifest));
    }

    for (dir, path) in &manifests {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let (package, deps) = parse_manifest(&text);
        if let Some(pkg) = package {
            package_to_dir.insert(pkg, dir.clone());
        }
        package_to_dir.entry(dir.clone()).or_insert_with(|| dir.clone());
        raw.push((dir.clone(), deps));
    }

    raw.into_iter()
        .map(|(dir, deps)| {
            let mapped = deps
                .into_iter()
                .filter_map(|d| package_to_dir.get(&d).cloned())
                .collect();
            (dir, mapped)
        })
        .collect()
}

/// Minimal TOML scrape: the `[package] name` and the keys of
/// `[dependencies]`. Good enough for this workspace's manifests, which are
/// all `name.workspace = true` style.
fn parse_manifest(text: &str) -> (Option<String>, Vec<String>) {
    let mut package = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    package = Some(v.trim().trim_matches('"').to_string());
                }
            }
        } else if section == "dependencies" {
            let key = line
                .split(['=', '.'])
                .next()
                .unwrap_or("")
                .trim()
                .trim_matches('"');
            if !key.is_empty() {
                deps.push(key.to_string());
            }
        }
    }
    (package, deps)
}

/// Parses and classifies an in-memory file set into the shape
/// [`SymbolTable::build`] wants.
pub fn parse_files(sources: &[(&str, &str)]) -> Vec<(FileInfo, FileFacts)> {
    sources
        .iter()
        .map(|(rel, src)| {
            let info = classify(rel);
            let facts = crate::parser::parse(&crate::tokenizer::tokenize(src));
            (info, facts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_scrape() {
        let (pkg, deps) = parse_manifest(
            "[package]\nname = \"attack-core\"\n\n[dependencies]\nunits.workspace = true\nmsgbus.workspace = true\n\n[dev-dependencies]\nproptest.workspace = true\n",
        );
        assert_eq!(pkg.as_deref(), Some("attack-core"));
        assert_eq!(deps, vec!["units", "msgbus"]);
    }

    #[test]
    fn closure_blocks_unrelated_crates() {
        let files = parse_files(&[
            ("crates/a/src/lib.rs", "pub fn fa() {}\n"),
            ("crates/b/src/lib.rs", "pub fn fb() {}\n"),
            ("crates/c/src/lib.rs", "pub fn fb() {}\n"),
        ]);
        let mut deps = HashMap::new();
        deps.insert("a".to_string(), vec!["b".to_string()]);
        deps.insert("b".to_string(), Vec::new());
        deps.insert("c".to_string(), Vec::new());
        let t = SymbolTable::build(&files, Some(&deps));
        // `a` sees fb in b, but not the one in c.
        let ids = t.resolve_name("a", "fb");
        assert_eq!(ids.len(), 1);
        assert_eq!(t.symbols[ids[0]].crate_name, "b");
        // `b` cannot see back into a.
        assert!(t.resolve_name("b", "fa").is_empty());
    }

    #[test]
    fn path_resolution_prefers_impl_methods() {
        let files = parse_files(&[(
            "crates/a/src/lib.rs",
            "pub struct T;\nimpl T { pub fn go(&self) {} }\npub fn go() {}\n",
        )]);
        let t = SymbolTable::build(&files, None);
        let ids = t.resolve_path("a", "T", "go");
        assert_eq!(ids.len(), 1);
        assert_eq!(t.symbols[ids[0]].qual, "T::go");
    }
}
