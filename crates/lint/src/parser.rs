//! A token-tree/item parser on top of the masking tokenizer.
//!
//! This is deliberately **not** a Rust grammar. The cross-file rules
//! (R6 taint flow, R7 transitive panic freedom, R8 safety-enum
//! exhaustiveness) only need to know, per file:
//!
//! * which functions are defined (free functions and `impl` methods, with
//!   their return-type text and whether they live in test code),
//! * which calls, macro invocations, panic primitives, and field accesses
//!   each function body contains,
//! * which `match` expressions exist and what their arm patterns look like,
//! * which `enum`s are declared.
//!
//! Everything is extracted from the tokenizer's *masked* lines, so string
//! literals and comments can never fabricate an item, and from a compound
//! token stream where `::`, `->` and `=>` are single tokens — which is what
//! makes `Vec<Vec<f64>>` (two closing angles) distinguishable from the
//! shift in `a >> b` without type information: inside generic brackets the
//! only `>` tokens left after arrow fusion are closers.

use crate::tokenizer::SourceFile;

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Identifier, keyword, number, or punctuation (`::`, `->`, `=>` are
    /// fused; every other punctuation char stands alone).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// Whether the token is an identifier/keyword/number.
    pub is_word: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `helper(…)` — a free function in scope.
    Free(String),
    /// `Type::method(…)` / `module::func(…)` — the last two path segments.
    Path(String, String),
    /// `.method(…)` — receiver type unknown.
    Method(String),
}

impl Callee {
    /// The bare function name being invoked.
    pub fn name(&self) -> &str {
        match self {
            Callee::Free(n) | Callee::Method(n) => n,
            Callee::Path(_, n) => n,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// 1-based line of the callee token.
    pub line: usize,
    /// The callee as written.
    pub callee: Callee,
}

/// One panic primitive inside a function body: `unwrap`/`expect` calls or
/// a `panic!`/`unreachable!`/`todo!`/`unimplemented!` invocation.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// The primitive, e.g. `unwrap` or `panic!`.
    pub what: String,
}

/// What a lock-relevant event does (see [`LockEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOp {
    /// `.lock()` on a `Mutex` — acquires a guard.
    Acquire,
    /// `.wait(guard)` / `.wait_timeout(guard, …)` on a `Condvar` (the
    /// zero-argument `.wait()` of an ordinary method is *not* one).
    CondWait,
    /// A call made while at least one guard is held.
    GuardedCall,
}

/// One lock-relevant event inside a function body, in source order. The
/// guard-lifetime model is the token-tree one: a guard bound by a plain
/// `let` lives until its enclosing block closes (or an explicit
/// `drop(binding)`); a guard consumed as a temporary inside a larger
/// expression lives until the end of the full statement — which is exactly
/// the model under which `x.lock().expect(…).pop().or_else(|| steal())`
/// calls `steal` *with the guard still held*.
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// 1-based line of the event.
    pub line: usize,
    /// Event kind.
    pub op: LockOp,
    /// Acquire/CondWait: normalized lock/condvar name — the last field
    /// segment of the receiver chain (`self.queues[slot].lock()` →
    /// `queues`). GuardedCall: the callee name.
    pub what: String,
    /// Normalized names of locks already held at this event.
    pub held: Vec<String>,
    /// Acquire: the guard is consumed by `.expect(…)`/`.unwrap()`.
    pub expect: bool,
    /// CondWait: the site sits inside a `while`/`loop` body.
    pub in_loop: bool,
    /// GuardedCall: the callee was invoked as `.method(…)`.
    pub method: bool,
}

/// A parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`step`).
    pub name: String,
    /// Qualified name (`Harness::step` for impl methods, else the bare
    /// name).
    pub qual: String,
    /// `impl` type the method belongs to, if any.
    pub impl_type: Option<String>,
    /// Whether the signature is `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Whether the definition lives in `#[cfg(test)]`/`#[test]` code.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Return-type text after `->` (empty for `()` returns).
    pub ret: String,
    /// Call sites in the body, in order.
    pub calls: Vec<Call>,
    /// Panic primitives in the body.
    pub panics: Vec<PanicSite>,
    /// Field accesses `.field` (reads and writes alike) in the body.
    pub fields: Vec<(usize, String)>,
    /// Macro invocations in the body (name without `!`).
    pub macros: Vec<(usize, String)>,
    /// Lock acquisitions, condvar waits, and calls-under-guard (R12/R14).
    pub locks: Vec<LockEvent>,
}

/// One arm of a `match`.
#[derive(Debug, Clone)]
pub struct Arm {
    /// 1-based line the pattern starts on.
    pub line: usize,
    /// Pattern text (tokens joined with spaces), guard included.
    pub pat: String,
    /// Whether the pattern is a bare `_` (optionally guarded).
    pub wildcard: bool,
    /// `Enum::Variant` path heads appearing in the pattern (the `Enum`
    /// part), deduplicated.
    pub enum_heads: Vec<String>,
}

/// One `match` expression with its arms (innermost ownership: arms of a
/// nested match belong to the nested fact, not the enclosing one).
#[derive(Debug, Clone)]
pub struct MatchFact {
    /// 1-based line of the `match` keyword.
    pub line: usize,
    /// Scrutinee text (tokens joined with spaces).
    pub scrutinee: String,
    /// The arms, in order.
    pub arms: Vec<Arm>,
    /// Whether the match sits in test code.
    pub is_test: bool,
}

/// A declared `enum` and its variants.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
}

/// Everything the cross-file rules need from one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// Match expressions, innermost-ownership.
    pub matches: Vec<MatchFact>,
    /// Enum declarations.
    pub enums: Vec<EnumDef>,
    /// Struct names declared in the file.
    pub structs: Vec<String>,
}

/// Keywords that look like callees when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "fn", "let", "else", "move",
];

/// The explicit panic primitives R7 tracks. Indexing is deliberately not
/// in this set: it stays a *lexical* obligation (R2) inside the safety-path
/// crates, where bounds are short and reviewable, because a call-chain
/// report for every fixed-size array access in the plant model would bury
/// the real findings.
pub const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
/// Method calls that panic on `None`/`Err`.
pub const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Lexes the masked lines into a compound token stream.
pub fn lex(src: &SourceFile) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, line) in src.lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let n = chars.len();
        let mut i = 0usize;
        while i < n {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    is_word: true,
                });
            } else {
                // Fuse `::`, `->`, `=>`; leave every other punct single so
                // `>>` stays two closers for angle balancing.
                let two: Option<&str> = match (c, chars.get(i + 1)) {
                    (':', Some(':')) => Some("::"),
                    ('-', Some('>')) => Some("->"),
                    ('=', Some('>')) => Some("=>"),
                    _ => None,
                };
                match two {
                    Some(t) => {
                        toks.push(Tok {
                            text: t.to_string(),
                            line: lineno,
                            is_word: false,
                        });
                        i += 2;
                    }
                    None => {
                        toks.push(Tok {
                            text: c.to_string(),
                            line: lineno,
                            is_word: false,
                        });
                        i += 1;
                    }
                }
            }
        }
    }
    toks
}

/// Index one past the bracket that closes the opener at `open` (which must
/// be `(`, `[`, or `{`). Falls back to `toks.len()` on imbalance.
fn matching(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Skips a generic argument list starting at `<`; returns the index one
/// past the matching `>`. Arrow fusion at lex time means every remaining
/// `>` inside is a closer, so `Vec<Vec<f64>>` balances exactly.
fn skip_generics(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            // A parenthesized group may contain comparisons; skip it whole.
            "(" | "[" | "{" => i = matching(toks, i) - 1,
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Parses one file's facts out of its tokenized form. `in_test(line)` maps
/// a 1-based line to the tokenizer's test-region flag.
pub fn parse(src: &SourceFile) -> FileFacts {
    let toks = lex(src);
    let in_test = |line: usize| {
        src.lines
            .get(line.saturating_sub(1))
            .is_some_and(|l| l.in_test)
    };
    let mut facts = FileFacts::default();

    // impl-context stack: (type name, brace depth at which the impl body
    // opened). A `fn` token inside the top context is a method of it.
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    let mut depth = 0i64;
    // `pub` visibility is reset at every item delimiter.
    let mut saw_pub = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                saw_pub = false;
                i += 1;
            }
            "}" => {
                if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                    impl_stack.pop();
                }
                depth -= 1;
                saw_pub = false;
                i += 1;
            }
            ";" => {
                saw_pub = false;
                i += 1;
            }
            "pub" => {
                // `pub(crate)`/`pub(super)` are not public API.
                saw_pub = toks.get(i + 1).is_none_or(|n| n.text != "(");
                if !saw_pub {
                    i = matching(&toks, i + 1);
                } else {
                    i += 1;
                }
            }
            "impl" => {
                if let Some((ty, body_open)) = parse_impl_header(&toks, i) {
                    // Record the depth the impl body will open at.
                    impl_stack.push((ty, depth + 1));
                    depth += 1;
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            "struct" => {
                if let Some(name) = toks.get(i + 1).filter(|t| t.is_word) {
                    facts.structs.push(name.text.clone());
                }
                i += 1;
            }
            "enum" => {
                let (def, next) = parse_enum(&toks, i);
                if let Some(def) = def {
                    facts.enums.push(def);
                }
                i = next;
            }
            "fn" => {
                let (def, next) = parse_fn(&toks, i, &impl_stack, saw_pub, &in_test, &mut facts);
                if let Some(def) = def {
                    facts.fns.push(def);
                }
                saw_pub = false;
                i = next;
            }
            _ => {
                i += 1;
            }
        }
    }
    facts
}

/// Parses `impl … {`: returns the implemented type name and the index of
/// the `{` opening the body. Handles `impl<T> Foo<T>`, `impl Trait for
/// Type`, and `where` clauses.
fn parse_impl_header(toks: &[Tok], impl_idx: usize) -> Option<(String, usize)> {
    let mut i = impl_idx + 1;
    if toks.get(i).is_some_and(|t| t.text == "<") {
        i = skip_generics(toks, i);
    }
    // Collect path segments until `for` / `{` / `where`.
    let mut head: Option<String> = None;
    let mut tail: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                return Some((tail.or(head)?, i));
            }
            "for" => {
                // Trait impl: the type follows.
                i += 1;
                let mut ty: Option<String> = None;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "{" => return Some((ty?, i)),
                        "where" => {
                            while i < toks.len() && toks[i].text != "{" {
                                i += 1;
                            }
                            return Some((ty?, i));
                        }
                        "<" => i = skip_generics(toks, i),
                        "::" | "&" | "'" | "mut" => i += 1,
                        _ if toks[i].is_word => {
                            ty = Some(toks[i].text.clone());
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                return None;
            }
            "where" => {
                while i < toks.len() && toks[i].text != "{" {
                    i += 1;
                }
                return Some((tail.or(head)?, i));
            }
            "<" => {
                i = skip_generics(toks, i);
            }
            "::" => {
                i += 1;
            }
            _ if t.is_word => {
                if head.is_none() {
                    head = Some(t.text.clone());
                } else {
                    tail = Some(t.text.clone());
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Parses `enum Name { Variant, … }`; returns the def and the index one
/// past the closing brace.
fn parse_enum(toks: &[Tok], enum_idx: usize) -> (Option<EnumDef>, usize) {
    let Some(name) = toks.get(enum_idx + 1).filter(|t| t.is_word) else {
        return (None, enum_idx + 1);
    };
    let mut i = enum_idx + 2;
    if toks.get(i).is_some_and(|t| t.text == "<") {
        i = skip_generics(toks, i);
    }
    while i < toks.len() && toks[i].text != "{" && toks[i].text != ";" {
        i += 1;
    }
    if i >= toks.len() || toks[i].text == ";" {
        return (None, i);
    }
    let end = matching(toks, i);
    let mut variants = Vec::new();
    let mut expect_variant = true;
    let mut j = i + 1;
    while j < end.saturating_sub(1) {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => {
                j = matching(toks, j);
                continue;
            }
            "," => expect_variant = true,
            // Attribute on a variant: `#[…]`.
            "#" if toks.get(j + 1).is_some_and(|t| t.text == "[") => {
                j = matching(toks, j + 1);
                continue;
            }
            "=" => expect_variant = false, // discriminant expression
            _ if toks[j].is_word && expect_variant => {
                variants.push(toks[j].text.clone());
                expect_variant = false;
            }
            _ => {}
        }
        j += 1;
    }
    (
        Some(EnumDef {
            name: name.text.clone(),
            variants,
            line: toks[enum_idx].line,
        }),
        end,
    )
}

/// Parses a `fn` item starting at the `fn` token. Returns the def (if the
/// fn has a name) and the index one past the body (or the `;` for bodiless
/// trait declarations).
fn parse_fn(
    toks: &[Tok],
    fn_idx: usize,
    impl_stack: &[(String, i64)],
    is_pub: bool,
    in_test: &dyn Fn(usize) -> bool,
    facts: &mut FileFacts,
) -> (Option<FnDef>, usize) {
    let Some(name) = toks.get(fn_idx + 1).filter(|t| t.is_word) else {
        return (None, fn_idx + 1);
    };
    let mut i = fn_idx + 2;
    if toks.get(i).is_some_and(|t| t.text == "<") {
        i = skip_generics(toks, i);
    }
    if toks.get(i).is_none_or(|t| t.text != "(") {
        return (None, i);
    }
    i = matching(toks, i); // past the parameter list
    let mut ret = String::new();
    if toks.get(i).is_some_and(|t| t.text == "->") {
        i += 1;
        while i < toks.len() && toks[i].text != "{" && toks[i].text != ";" && toks[i].text != "where"
        {
            if !ret.is_empty() {
                ret.push(' ');
            }
            ret.push_str(&toks[i].text);
            i += 1;
        }
    }
    while i < toks.len() && toks[i].text != "{" && toks[i].text != ";" {
        i += 1;
    }
    if i >= toks.len() || toks[i].text == ";" {
        // Trait method declaration without a body.
        return (
            Some(FnDef {
                name: name.text.clone(),
                qual: qualify(impl_stack, &name.text),
                impl_type: impl_stack.last().map(|(t, _)| t.clone()),
                is_pub,
                is_test: in_test(toks[fn_idx].line),
                line: toks[fn_idx].line,
                ret,
                calls: Vec::new(),
                panics: Vec::new(),
                fields: Vec::new(),
                macros: Vec::new(),
                locks: Vec::new(),
            }),
            i + 1,
        );
    }
    let body_start = i;
    let body_end = matching(toks, body_start);
    let mut def = FnDef {
        name: name.text.clone(),
        qual: qualify(impl_stack, &name.text),
        impl_type: impl_stack.last().map(|(t, _)| t.clone()),
        is_pub,
        is_test: in_test(toks[fn_idx].line),
        line: toks[fn_idx].line,
        ret,
        calls: Vec::new(),
        panics: Vec::new(),
        fields: Vec::new(),
        macros: Vec::new(),
        locks: Vec::new(),
    };
    scan_flat(toks, body_start + 1, body_end.saturating_sub(1), &mut def);
    scan_locks(toks, body_start + 1, body_end.saturating_sub(1), &mut def);
    scan_matches(
        toks,
        body_start + 1,
        body_end.saturating_sub(1),
        in_test,
        &mut facts.matches,
    );
    (Some(def), body_end)
}

fn qualify(impl_stack: &[(String, i64)], name: &str) -> String {
    match impl_stack.last() {
        Some((ty, _)) => format!("{ty}::{name}"),
        None => name.to_string(),
    }
}

/// Flat body scan: calls, panic primitives, field accesses, macros.
/// Nested fns are rare in this workspace and their bodies are attributed
/// to the enclosing def, which is conservative in the right direction for
/// both R6 and R7 (the enclosing fn can reach whatever the nested one
/// does).
fn scan_flat(toks: &[Tok], start: usize, end: usize, def: &mut FnDef) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_word {
            let next = toks.get(i + 1).map(|t| t.text.as_str());
            let prev = if i > start {
                Some(toks[i - 1].text.as_str())
            } else {
                None
            };
            if next == Some("!") && PANIC_MACROS.contains(&t.text.as_str()) {
                def.panics.push(PanicSite {
                    line: t.line,
                    what: format!("{}!", t.text),
                });
                def.macros.push((t.line, t.text.clone()));
                i += 2;
                continue;
            }
            if next == Some("!") {
                def.macros.push((t.line, t.text.clone()));
                i += 2;
                continue;
            }
            let call_paren = match next {
                Some("(") => Some(i + 1),
                // Turbofish: `name::<T>(…)`.
                Some("::") if toks.get(i + 2).is_some_and(|t| t.text == "<") => {
                    let after = skip_generics(toks, i + 2);
                    toks.get(after)
                        .filter(|t| t.text == "(")
                        .map(|_| after)
                }
                _ => None,
            };
            if let Some(_paren) = call_paren {
                if !NON_CALL_KEYWORDS.contains(&t.text.as_str()) && prev != Some("fn") {
                    let callee = match prev {
                        Some(".") => {
                            if PANIC_METHODS.contains(&t.text.as_str()) {
                                def.panics.push(PanicSite {
                                    line: t.line,
                                    what: format!(".{}()", t.text),
                                });
                            }
                            Some(Callee::Method(t.text.clone()))
                        }
                        Some("::") if i >= start + 2 && toks[i - 2].is_word => {
                            Some(Callee::Path(toks[i - 2].text.clone(), t.text.clone()))
                        }
                        _ => Some(Callee::Free(t.text.clone())),
                    };
                    if let Some(callee) = callee {
                        def.calls.push(Call {
                            line: t.line,
                            callee,
                        });
                    }
                }
            } else if prev == Some(".") && next != Some("(") {
                // `.field` access (await and numeric tuple indices included;
                // harmless for the consumers).
                def.fields.push((t.line, t.text.clone()));
            }
        }
        i += 1;
    }
}

/// Index of the bracket that opens the closer at `close` (which must be
/// `)`, `]`, or `}`). Falls back to 0 on imbalance.
fn matching_back(toks: &[Tok], close: usize) -> usize {
    let mut depth = 0i64;
    let mut i = close;
    loop {
        match toks[i].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// Start index of the receiver chain feeding the `.` at `dot`: walks back
/// over idents (`self`, fields), `::` paths, and trailing index/call
/// groups, so `self.queues[slot]` and `p.state` are each one chain.
fn chain_start(toks: &[Tok], dot: usize) -> usize {
    let mut k = dot;
    loop {
        if k == 0 {
            return 0;
        }
        let mut seg = k - 1;
        while matches!(toks[seg].text.as_str(), ")" | "]") {
            let open = matching_back(toks, seg);
            if open == 0 {
                return 0;
            }
            seg = open - 1;
        }
        if !toks[seg].is_word {
            return seg + 1;
        }
        if seg == 0 {
            return 0;
        }
        match toks[seg - 1].text.as_str() {
            "." | "::" => k = seg - 1,
            _ => return seg,
        }
    }
}

/// Normalized lock identity for a receiver chain: the last word token at
/// bracket level zero (`self.queues[slot]` → `queues`), so every
/// acquisition of the same field unifies to one graph node. Name-based
/// identity over-approximates (two same-named fields of different types
/// unify), which errs toward reporting — the direction a deadlock gate
/// must err in.
fn lock_name(toks: &[Tok], start: usize, dot: usize) -> String {
    let mut depth = 0i64;
    let mut name: Option<&str> = None;
    let mut any: Option<&str> = None;
    for t in &toks[start..dot] {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            _ if t.is_word => {
                any = Some(&t.text);
                if depth == 0 {
                    name = Some(&t.text);
                }
            }
            _ => {}
        }
    }
    name.or(any).unwrap_or("<lock>").to_string()
}

/// Scoped-guard scan: tracks active `MutexGuard`s through the token tree
/// and records [`LockEvent`]s. Guard lifetimes follow the model documented
/// on [`LockEvent`]; `while`/`loop` bodies are tracked for the
/// `Condvar::wait`-in-predicate-loop obligation. Like [`scan_flat`],
/// closure bodies are attributed to the enclosing fn — conservative in the
/// right direction, since `.or_else(|| …)` runs while a same-statement
/// temporary guard is still held.
fn scan_locks(toks: &[Tok], start: usize, end: usize, def: &mut FnDef) {
    struct Guard {
        name: String,
        brace: i64,
        let_bound: bool,
        binding: Option<String>,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut brace = 0i64;
    let mut paren = 0i64;
    let mut loop_braces: Vec<i64> = Vec::new();
    let mut pending_loop = false;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                brace += 1;
                if pending_loop {
                    loop_braces.push(brace);
                    pending_loop = false;
                }
                i += 1;
                continue;
            }
            "}" => {
                guards.retain(|g| g.brace < brace);
                loop_braces.retain(|&d| d < brace);
                brace -= 1;
                i += 1;
                continue;
            }
            "(" | "[" => {
                paren += 1;
                i += 1;
                continue;
            }
            ")" | "]" => {
                paren -= 1;
                i += 1;
                continue;
            }
            ";" => {
                // End of a full statement: temporaries die here.
                if paren == 0 {
                    guards.retain(|g| g.let_bound);
                }
                i += 1;
                continue;
            }
            "while" | "loop" => {
                pending_loop = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        if t.is_word {
            let prev = if i > start {
                Some(toks[i - 1].text.as_str())
            } else {
                None
            };
            let is_call = toks.get(i + 1).is_some_and(|n| n.text == "(");
            if is_call && prev == Some(".") {
                if t.text == "lock" {
                    let cs = chain_start(toks, i - 1);
                    let name = lock_name(toks, cs, i - 1);
                    // Walk the consumer chain past the guard-preserving
                    // adapters: `.expect(…)`/`.unwrap()` (the poisoning
                    // policy R12 audits) and `.unwrap_or_else(…)` (the
                    // `PoisonError::into_inner` recovery idiom).
                    let mut j = matching(toks, i + 1);
                    let mut expect = false;
                    while j < end
                        && toks[j].text == "."
                        && toks.get(j + 1).is_some_and(|t| {
                            matches!(t.text.as_str(), "expect" | "unwrap" | "unwrap_or_else")
                        })
                        && toks.get(j + 2).is_some_and(|t| t.text == "(")
                    {
                        expect |= toks[j + 1].text != "unwrap_or_else";
                        j = matching(toks, j + 2);
                    }
                    let consumed_inline = j < end && toks[j].text == ".";
                    // `let g = recv.lock()…;` binds the guard to `g`.
                    let mut let_bound = false;
                    let mut binding = None;
                    if !consumed_inline && cs >= 2 && toks[cs - 1].text == "=" && toks[cs - 2].is_word
                    {
                        let b = cs - 2;
                        let lead = if b >= 1 && toks[b - 1].text == "mut" {
                            b.checked_sub(2)
                        } else {
                            b.checked_sub(1)
                        };
                        if lead.is_some_and(|l| toks[l].text == "let") {
                            let_bound = true;
                            binding = Some(toks[b].text.clone());
                        }
                    }
                    def.locks.push(LockEvent {
                        line: t.line,
                        op: LockOp::Acquire,
                        what: name.clone(),
                        held: guards.iter().map(|g| g.name.clone()).collect(),
                        expect,
                        in_loop: false,
                        method: true,
                    });
                    guards.push(Guard {
                        name,
                        brace,
                        let_bound,
                        binding,
                    });
                    i += 1;
                    continue;
                }
                if matches!(t.text.as_str(), "wait" | "wait_timeout" | "wait_while")
                    && toks.get(i + 2).is_some_and(|t| t.text != ")")
                {
                    // A condvar wait takes the guard as an argument; the
                    // zero-arg `.wait()` of an ordinary method does not.
                    let cs = chain_start(toks, i - 1);
                    let name = lock_name(toks, cs, i - 1);
                    def.locks.push(LockEvent {
                        line: t.line,
                        op: LockOp::CondWait,
                        what: name,
                        held: guards.iter().map(|g| g.name.clone()).collect(),
                        expect: false,
                        in_loop: !loop_braces.is_empty(),
                        method: true,
                    });
                    i += 1;
                    continue;
                }
            }
            if is_call && !guards.is_empty() {
                if t.text == "drop" && prev != Some(".") {
                    // `drop(binding)` releases a named guard early.
                    if let Some(arg) = toks.get(i + 2).filter(|a| a.is_word) {
                        if toks.get(i + 3).is_some_and(|t| t.text == ")") {
                            guards.retain(|g| g.binding.as_deref() != Some(arg.text.as_str()));
                        }
                    }
                } else if !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                    && prev != Some("fn")
                    && !matches!(t.text.as_str(), "expect" | "unwrap" | "unwrap_or_else")
                {
                    def.locks.push(LockEvent {
                        line: t.line,
                        op: LockOp::GuardedCall,
                        what: t.text.clone(),
                        held: guards.iter().map(|g| g.name.clone()).collect(),
                        expect: false,
                        in_loop: false,
                        method: prev == Some("."),
                    });
                }
            }
        }
        i += 1;
    }
}

/// Recursive match-expression scan over a body token range. Arms belong to
/// the innermost match; nested matches inside arm bodies and scrutinees
/// get their own fact.
fn scan_matches(
    toks: &[Tok],
    start: usize,
    end: usize,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<MatchFact>,
) {
    let mut i = start;
    while i < end {
        if toks[i].is_word && toks[i].text == "match" {
            i = parse_match(toks, i, end, in_test, out);
        } else {
            i += 1;
        }
    }
}

/// Parses one `match` expression starting at the `match` keyword; returns
/// the index one past its closing brace.
fn parse_match(
    toks: &[Tok],
    match_idx: usize,
    limit: usize,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<MatchFact>,
) -> usize {
    // Scrutinee: tokens until the `{` at nesting level 0. Rust forbids bare
    // struct literals in scrutinee position, so the first level-0 `{` opens
    // the match body.
    let mut i = match_idx + 1;
    let mut scrutinee = String::new();
    while i < limit {
        match toks[i].text.as_str() {
            "{" => break,
            "(" | "[" => {
                let close = matching(toks, i);
                for t in &toks[i..close.min(limit)] {
                    if !scrutinee.is_empty() {
                        scrutinee.push(' ');
                    }
                    scrutinee.push_str(&t.text);
                }
                i = close;
            }
            _ => {
                if !scrutinee.is_empty() {
                    scrutinee.push(' ');
                }
                scrutinee.push_str(&toks[i].text);
                i += 1;
            }
        }
    }
    if i >= limit {
        return limit;
    }
    let body_open = i;
    let body_end = matching(toks, body_open);
    let mut fact = MatchFact {
        line: toks[match_idx].line,
        scrutinee,
        arms: Vec::new(),
        is_test: in_test(toks[match_idx].line),
    };

    // Scrutinee may itself contain a `match` (e.g. `match match x {…} {…}`
    // — never written here, but stay correct).
    scan_matches(toks, match_idx + 1, body_open, in_test, out);

    let mut j = body_open + 1;
    let inner_end = body_end.saturating_sub(1);
    while j < inner_end {
        // Pattern: tokens until `=>` at level 0.
        let pat_start = j;
        let mut pat = String::new();
        let mut enum_heads: Vec<String> = Vec::new();
        while j < inner_end && toks[j].text != "=>" {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => {
                    let close = matching(toks, j);
                    for k in j..close.min(inner_end) {
                        push_pat_tok(toks, k, &mut pat, &mut enum_heads);
                    }
                    j = close;
                }
                _ => {
                    push_pat_tok(toks, j, &mut pat, &mut enum_heads);
                    j += 1;
                }
            }
        }
        if j >= inner_end {
            break;
        }
        let pat_line = toks[pat_start].line;
        let first = toks.get(pat_start).map(|t| t.text.as_str());
        let second = toks.get(pat_start + 1).map(|t| t.text.as_str());
        let wildcard = first == Some("_") && (pat_start + 1 == j || second == Some("if"));
        enum_heads.sort();
        enum_heads.dedup();
        fact.arms.push(Arm {
            line: pat_line,
            pat,
            wildcard,
            enum_heads,
        });
        j += 1; // past `=>`
        // Arm body: a block, or an expression up to the level-0 comma.
        if j < inner_end && toks[j].text == "{" {
            let close = matching(toks, j);
            scan_matches(toks, j + 1, close.saturating_sub(1).min(inner_end), in_test, out);
            j = close;
            if j < inner_end && toks[j].text == "," {
                j += 1;
            }
        } else {
            let expr_start = j;
            while j < inner_end && toks[j].text != "," {
                match toks[j].text.as_str() {
                    "(" | "[" | "{" => j = matching(toks, j),
                    _ => j += 1,
                }
            }
            scan_matches(toks, expr_start, j.min(inner_end), in_test, out);
            if j < inner_end {
                j += 1; // past `,`
            }
        }
    }
    out.push(fact);
    body_end
}

/// Appends one pattern token, recording `Enum::Variant` heads.
fn push_pat_tok(toks: &[Tok], idx: usize, pat: &mut String, enum_heads: &mut Vec<String>) {
    let t = &toks[idx];
    if !pat.is_empty() {
        pat.push(' ');
    }
    pat.push_str(&t.text);
    if t.text == "::" {
        if let (Some(prev), Some(next)) = (
            toks.get(idx.wrapping_sub(1)).filter(|t| t.is_word),
            toks.get(idx + 1).filter(|t| t.is_word),
        ) {
            // `Enum::Variant` — heuristically a path into a type when the
            // head is capitalized (`msgbus::schema` stays out).
            if prev.text.chars().next().is_some_and(|c| c.is_uppercase())
                && next.text.chars().next().is_some_and(|c| c.is_uppercase())
            {
                enum_heads.push(prev.text.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn facts(src: &str) -> FileFacts {
        parse(&tokenize(src))
    }

    #[test]
    fn fuses_compound_tokens() {
        let toks = lex(&tokenize("a::b -> c => d"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "::", "b", "->", "c", "=>", "d"]);
    }

    #[test]
    fn parses_free_fn_and_method() {
        let f = facts(
            "pub fn free(x: u8) -> Vec<Vec<f64>> { helper(x); v.push(1); }\n\
             impl Harness { fn step(&mut self) { self.world.advance(); } }\n",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].qual, "free");
        assert!(f.fns[0].is_pub);
        assert_eq!(f.fns[0].ret, "Vec < Vec < f64 > >");
        assert_eq!(f.fns[1].qual, "Harness::step");
        assert!(!f.fns[1].is_pub);
        let callees: Vec<&str> = f.fns[1].calls.iter().map(|c| c.callee.name()).collect();
        assert_eq!(callees, vec!["advance"]);
    }

    #[test]
    fn trait_impl_attributes_methods_to_the_type() {
        let f = facts("impl Display for AttackType { fn fmt(&self) { write(); } }\n");
        assert_eq!(f.fns[0].qual, "AttackType::fmt");
    }

    #[test]
    fn records_calls_paths_and_panics() {
        let f = facts(
            "fn f() {\n  let x = canbus::rewrite_signal(a, b);\n  let y = opt.unwrap();\n  panic!(\"boom\");\n  Type::make(1);\n}\n",
        );
        let d = &f.fns[0];
        assert!(d
            .calls
            .iter()
            .any(|c| c.callee == Callee::Path("canbus".into(), "rewrite_signal".into())));
        assert!(d
            .calls
            .iter()
            .any(|c| c.callee == Callee::Path("Type".into(), "make".into())));
        let panics: Vec<&str> = d.panics.iter().map(|p| p.what.as_str()).collect();
        assert!(panics.contains(&".unwrap()"));
        assert!(panics.contains(&"panic!"));
    }

    #[test]
    fn match_arms_innermost_ownership() {
        let f = facts(
            "fn f(a: A) -> bool {\n\
             match a.b() {\n\
               AttackAction::Go => match (x, y) {\n\
                 (Some(q), Some(r)) => true,\n\
                 _ => false,\n\
               },\n\
               AttackAction::Stop => false,\n\
             }\n}\n",
        );
        assert_eq!(f.matches.len(), 2);
        let inner = f
            .matches
            .iter()
            .find(|m| m.scrutinee == "( x , y )")
            .expect("inner match");
        assert!(inner.arms.iter().any(|a| a.wildcard));
        let outer = f
            .matches
            .iter()
            .find(|m| m.scrutinee == "a . b ( )")
            .expect("outer match");
        assert!(!outer.arms.iter().any(|a| a.wildcard), "{outer:?}");
        assert!(outer.arms[0].enum_heads.contains(&"AttackAction".into()));
    }

    #[test]
    fn enum_variants_extracted() {
        let f = facts(
            "pub enum HazardKind {\n  #[doc = \"x\"]\n  H1,\n  H2(u8),\n  H3 { v: u8 },\n}\n",
        );
        assert_eq!(f.enums.len(), 1);
        assert_eq!(f.enums[0].name, "HazardKind");
        assert_eq!(f.enums[0].variants, vec!["H1", "H2", "H3"]);
    }

    #[test]
    fn test_fns_are_flagged() {
        let f = facts("#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live() {}\n");
        let t = f.fns.iter().find(|d| d.name == "t").unwrap();
        assert!(t.is_test);
        let live = f.fns.iter().find(|d| d.name == "live").unwrap();
        assert!(!live.is_test);
    }

    fn lock_events(src: &str) -> Vec<LockEvent> {
        facts(src).fns.remove(0).locks
    }

    #[test]
    fn temporary_guard_spans_the_full_statement() {
        // The pool-bug shape: the chain's `.or_else` closure runs while the
        // temporary guard from `.lock()` is still alive.
        let ev = lock_events(
            "fn participate(&self) {\n\
               let task = self.queues[slot].lock().expect(\"q\").pop_front().or_else(|| self.steal(slot));\n\
               let next = self.other_work();\n\
             }\n",
        );
        let acq = ev.iter().find(|e| e.op == LockOp::Acquire).unwrap();
        assert_eq!(acq.what, "queues");
        assert!(acq.expect);
        let steal = ev.iter().find(|e| e.what == "steal").unwrap();
        assert_eq!(steal.op, LockOp::GuardedCall);
        assert_eq!(steal.held, vec!["queues".to_string()]);
        // The guard died at the `;`, so the next statement's call is free:
        // no guard held means no event recorded at all.
        assert!(!ev.iter().any(|e| e.what == "other_work"));
    }

    #[test]
    fn let_bound_guard_lives_to_block_close_or_drop() {
        let ev = lock_events(
            "fn f(&self) {\n\
               {\n\
                 let g = self.state.lock().unwrap();\n\
                 self.inside();\n\
               }\n\
               self.outside();\n\
               let h = self.state.lock().unwrap();\n\
               drop(h);\n\
               self.after_drop();\n\
             }\n",
        );
        assert_eq!(ev.iter().find(|e| e.what == "inside").unwrap().held, vec!["state".to_string()]);
        // Calls made after the guard is gone record no event.
        assert!(!ev.iter().any(|e| e.what == "outside"));
        assert!(!ev.iter().any(|e| e.what == "after_drop"));
    }

    #[test]
    fn unwrap_or_else_recovery_preserves_the_guard_without_expect() {
        let ev = lock_events(
            "fn f(&self) {\n\
               let g = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
               self.guarded();\n\
             }\n",
        );
        let acq = ev.iter().find(|e| e.op == LockOp::Acquire).unwrap();
        assert!(!acq.expect);
        assert_eq!(ev.iter().find(|e| e.what == "guarded").unwrap().held, vec!["state".to_string()]);
    }

    #[test]
    fn condvar_wait_arity_and_loop_detection() {
        let ev = lock_events(
            "fn f(&self) {\n\
               let mut done = self.done.lock().unwrap();\n\
               while *done < self.total {\n\
                 done = self.done_cv.wait(done).unwrap();\n\
               }\n\
             }\n",
        );
        let w = ev.iter().find(|e| e.op == LockOp::CondWait).unwrap();
        assert_eq!(w.what, "done_cv");
        assert!(w.in_loop);
        assert_eq!(w.held, vec!["done".to_string()]);
        // A zero-argument `.wait()` is an ordinary guarded call, not a
        // condvar wait.
        let ev = lock_events(
            "fn g(&self) { let l = self.m.lock().unwrap(); job.wait(); }\n",
        );
        assert!(!ev.iter().any(|e| e.op == LockOp::CondWait));
        let call = ev.iter().find(|e| e.what == "wait").unwrap();
        assert_eq!(call.op, LockOp::GuardedCall);
        assert_eq!(call.held, vec!["m".to_string()]);
    }

    #[test]
    fn nested_acquire_records_held_set() {
        let ev = lock_events(
            "fn f(&self) {\n\
               let a = self.alpha.lock().unwrap();\n\
               let b = self.beta.lock().unwrap();\n\
             }\n",
        );
        let beta = ev.iter().find(|e| e.what == "beta").unwrap();
        assert_eq!(beta.op, LockOp::Acquire);
        assert_eq!(beta.held, vec!["alpha".to_string()]);
    }
}
