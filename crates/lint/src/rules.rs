//! The per-file rules: R1–R5 as lexical checks over masked lines, R8 over
//! the parsed match facts.
//!
//! Every lexical rule receives lines that have already had comments and
//! string literals blanked out by the tokenizer, so the matching here can
//! stay simple without producing false positives from prose. R8 consumes
//! [`crate::parser`] facts instead — wildcard detection needs real arm
//! structure, not line patterns. The scoping matrix (which crates / file
//! kinds a rule applies to) lives in [`crate::scope`].
//!
//! Rules here report *raw* findings: inline suppressions are applied by the
//! caller ([`crate::scan_workspace`] / [`crate::scan_source`]), which also
//! tracks which suppressions actually absorbed something — a dead
//! `allow(...)` is itself a finding.

use crate::cache::{FileAnalysis, SuppressionSite};
use crate::diag::{Diagnostic, Rule, Severity};
use crate::parser::FileFacts;
use crate::scope::FileInfo;
use crate::tokenizer::SourceFile;

/// Runs every applicable per-file rule; returns raw findings with inline
/// suppressions NOT yet applied.
pub fn local_rules(info: &FileInfo, src: &SourceFile, facts: &FileFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if crate::scope::r1_applies(info) {
        r1_unit_safety(info, src, &mut out);
    }
    if crate::scope::r2_applies(info) {
        r2_panic_freedom(info, src, &mut out);
    }
    if crate::scope::r3_applies(info) {
        r3_actuator_containment(info, src, &mut out);
    }
    if crate::scope::r4_applies(info) {
        r4_float_hygiene(info, src, &mut out);
    }
    if crate::scope::r5_applies(info) {
        r5_determinism(info, src, &mut out);
    }
    if crate::scope::r8_applies(info) {
        r8_enum_exhaustiveness(info, src, facts, &mut out);
    }
    if crate::scope::concurrency_applies(info) {
        r12_expect_policy(info, src, facts, &mut out);
        r14_static_mut(info, src, &mut out);
    }
    out
}

/// Tokenizes + parses + rules one file into the cacheable analysis record:
/// raw local findings, suppression sites, and the function/enum facts the
/// workspace rules (R6/R7) need.
pub fn analyze_file(info: &FileInfo, source: &str) -> FileAnalysis {
    let src = crate::tokenizer::tokenize(source);
    let facts = crate::parser::parse(&src);
    let raw_diags = local_rules(info, &src, &facts);
    let mut suppressions: Vec<SuppressionSite> = src
        .suppressions
        .iter()
        .flat_map(|(&line, sups)| {
            sups.iter().map(move |s| SuppressionSite {
                line,
                rules: s.rules.clone(),
            })
        })
        .collect();
    suppressions.sort_by(|a, b| (a.line, &a.rules).cmp(&(b.line, &b.rules)));
    let fns = facts
        .fns
        .into_iter()
        .map(|mut f| {
            // Field facts are only consumed at parse time; dropping them
            // keeps cache entries small. Macros and lock events survive —
            // the workspace concurrency/alloc layer (R12–R14) reads them
            // from the cache on warm runs.
            f.fields = Vec::new();
            f
        })
        .collect();
    let enums = facts.enums.into_iter().map(|e| e.name).collect();
    FileAnalysis {
        raw_diags,
        suppressions,
        fns,
        enums,
    }
}

fn diag(rule: Rule, info: &FileInfo, line_idx: usize, snippet: &str, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        file: info.rel.clone(),
        line: line_idx + 1,
        snippet: snippet.trim().to_string(),
        message,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `hay` contains `needle` delimited by non-identifier characters.
fn has_token(hay: &str, needle: &str) -> bool {
    find_token(hay, needle).is_some()
}

/// Finds `needle` in `hay` at an identifier boundary.
fn find_token(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + needle.len();
        let after_ok = end >= hay.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// Whether the line contains a call of `.name(` (e.g. `.unwrap()`), with a
/// word boundary after the method name so `.unwrap_or()` never matches.
fn has_method_call(code: &str, name: &str) -> bool {
    let mut from = 0;
    let pat = format!(".{name}");
    while let Some(pos) = code[from..].find(&pat) {
        let at = from + pos;
        let after = at + pat.len();
        let rest = &code[after..];
        let boundary = rest.chars().next().is_none_or(|c| !is_ident_char(c));
        if boundary && rest.trim_start().starts_with('(') {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Whether the line invokes the macro `name!`.
fn has_macro(code: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
        let rest = &code[at + name.len()..];
        if before_ok && rest.starts_with('!') {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Keywords that can directly precede `[` without it being an index
/// expression (`&mut [u8; 8]`, `return [0; 4]`, `x as [u8; 2]`, …).
const PRE_BRACKET_KEYWORDS: [&str; 12] = [
    "mut", "ref", "dyn", "as", "in", "return", "else", "match", "if", "move", "impl", "break",
];

/// Whether the line contains an index expression `expr[…]`: a `[` whose
/// previous non-space token ends an expression (identifier, `)` or `]`) and
/// is not a keyword. Array literals, slice types, attributes, and `vec![…]`
/// all have a non-expression token before the bracket and do not match.
fn has_index_expr(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let before: Vec<char> = chars[..i]
            .iter()
            .rev()
            .skip_while(|c| c.is_whitespace())
            .copied()
            .collect();
        let Some(&p) = before.first() else { continue };
        if !(is_ident_char(p) || p == ')' || p == ']') {
            continue;
        }
        let word: String = before
            .iter()
            .take_while(|c| is_ident_char(**c))
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if PRE_BRACKET_KEYWORDS.contains(&word.as_str()) {
            continue;
        }
        // A lifetime before the bracket (`&'static [u8]`) is a slice type.
        if before.get(word.chars().count()) == Some(&'\'') {
            continue;
        }
        return true;
    }
    false
}

// ---------------------------------------------------------------- R1 ----

/// R1: scan `pub fn` signatures for raw `f64`/`f32` parameters or returns.
fn r1_unit_safety(info: &FileInfo, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let lines = &src.lines;
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        if line.in_test || !is_pub_fn(&line.code) {
            i += 1;
            continue;
        }
        // Accumulate the signature until the body `{` or a trailing `;`.
        let mut sig = String::new();
        let mut end = i;
        for (j, l) in lines.iter().enumerate().skip(i).take(24) {
            let code = &l.code;
            let stop = code.find('{').map(|p| (p, true)).or_else(|| {
                // A `;` ends a trait-method declaration.
                code.rfind(';').map(|p| (p, false))
            });
            match stop {
                Some((p, _)) => {
                    sig.push_str(&code[..p]);
                    end = j;
                    break;
                }
                None => {
                    sig.push_str(code);
                    sig.push(' ');
                    end = j;
                }
            }
        }
        if has_token(&sig, "f64") || has_token(&sig, "f32") {
            out.push(diag(
                Rule::UnitSafety,
                info,
                i,
                &lines[i].raw,
                "public API passes a raw float; use a `units::` newtype (Speed, Distance, \
                 Angle, Accel, Seconds) or allow with a reason if genuinely dimensionless"
                    .to_string(),
            ));
        }
        i = end + 1;
    }
}

/// Whether the masked line starts a `pub fn` (not `pub(crate)`, which is
/// not public API).
fn is_pub_fn(code: &str) -> bool {
    let Some(pos) = find_token(code, "pub") else {
        return false;
    };
    let rest = code[pos + 3..].trim_start();
    if rest.starts_with('(') {
        return false; // pub(crate) / pub(super)
    }
    // Skip qualifiers between `pub` and `fn`.
    let mut rest = rest;
    for q in ["const", "async", "unsafe", "extern"] {
        if let Some(r) = rest.strip_prefix(q) {
            rest = r.trim_start();
        }
    }
    rest.starts_with("fn ") || rest == "fn"
}

// ---------------------------------------------------------------- R2 ----

/// R2: panic-freedom in non-test library code of the safety-path crates.
fn r2_panic_freedom(info: &FileInfo, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for method in ["unwrap", "expect"] {
            if has_method_call(code, method) {
                out.push(diag(
                    Rule::PanicFreedom,
                    info,
                    i,
                    &line.raw,
                    format!(
                        "`.{method}()` can panic in safety-path library code; return a \
                         `Result`, use a checked alternative, or allow with a reason"
                    ),
                ));
            }
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            if has_macro(code, mac) {
                out.push(diag(
                    Rule::PanicFreedom,
                    info,
                    i,
                    &line.raw,
                    format!("`{mac}!` aborts the control loop; safety-path code must degrade, not die"),
                ));
            }
        }
        if has_index_expr(code) {
            out.push(diag(
                Rule::PanicFreedom,
                info,
                i,
                &line.raw,
                "indexing panics on out-of-bounds; use `.get(…)`, iterators, or allow with \
                 a reason proving the bound"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------- R3 ----

/// Actuator command fields whose mutation is contained by R3.
const ACTUATOR_FIELDS: [&str; 8] = [
    "accel", "steer", "gas", "brake", "accel_cmd", "brake_cmd", "steer_cmd", "gas_cmd",
];

/// R3: writes to actuator command fields outside the designated modules.
fn r3_actuator_containment(info: &FileInfo, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if let Some(field) = actuator_write(&line.code) {
            out.push(diag(
                Rule::ActuatorContainment,
                info,
                i,
                &line.raw,
                format!(
                    "write to actuator command field `.{field}` outside \
                     openadas::safety/openadas::controls/attack mutation points"
                ),
            ));
        }
    }
}

/// Detects `.field =` / `.field +=` style assignments to an actuator field.
fn actuator_write(code: &str) -> Option<&'static str> {
    for field in ACTUATOR_FIELDS {
        let pat = format!(".{field}");
        let mut from = 0;
        while let Some(pos) = code[from..].find(&pat) {
            let at = from + pos;
            let after = at + pat.len();
            let rest = &code[after..];
            // Word boundary: `.steering` must not match field `steer`.
            if rest.chars().next().is_some_and(is_ident_char) {
                from = at + 1;
                continue;
            }
            let t = rest.trim_start();
            let mut cs = t.chars();
            match (cs.next(), cs.next()) {
                (Some('='), second) if second != Some('=') && second != Some('>') => {
                    return Some(field);
                }
                (Some('+' | '-' | '*' | '/'), Some('=')) => {
                    return Some(field);
                }
                _ => {}
            }
            from = at + 1;
        }
    }
    None
}

// ---------------------------------------------------------------- R4 ----

/// R4: float `==`/`!=` and NaN-unchecked `partial_cmp().unwrap()`.
fn r4_float_hygiene(info: &FileInfo, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if let Some(op) = float_eq_compare(code) {
            out.push(diag(
                Rule::FloatHygiene,
                info,
                i,
                &line.raw,
                format!(
                    "`{op}` on a floating-point value; compare with an epsilon or restructure \
                     (exact float equality is how attack values slip through checks)"
                ),
            ));
        }
        if code.contains("partial_cmp")
            && (has_method_call(code, "unwrap") || has_method_call(code, "expect"))
        {
            out.push(diag(
                Rule::FloatHygiene,
                info,
                i,
                &line.raw,
                "`partial_cmp(…).unwrap()` panics on NaN; use `total_cmp` or handle `None`"
                    .to_string(),
            ));
        }
    }
}

/// Detects `==` / `!=` where either operand looks like a float: a numeric
/// literal containing `.`, or an `f64::`/`f32::` associated constant.
fn float_eq_compare(code: &str) -> Option<&'static str> {
    let chars: Vec<char> = code.chars().collect();
    let n = chars.len();
    for i in 0..n.saturating_sub(1) {
        let op = match (chars[i], chars[i + 1]) {
            ('=', '=') => "==",
            ('!', '=') => "!=",
            _ => continue,
        };
        // Skip `<=`, `>=`, `===`-ish and `=>`/pattern arms.
        if i > 0 && matches!(chars[i - 1], '<' | '>' | '=' | '!') {
            continue;
        }
        if i + 2 < n && chars[i + 2] == '=' {
            continue;
        }
        let left: String = chars[..i].iter().collect();
        let right: String = chars[i + 2..].iter().collect();
        let lhs = left.trim_end().rsplit([' ', '(', ',']).next();
        let rhs = right.trim_start().split([' ', ')', ',', ';']).next();
        if lhs.is_some_and(looks_float) || rhs.is_some_and(looks_float) {
            return Some(op);
        }
    }
    None
}

/// Whether a single operand token looks like a float expression.
fn looks_float(tok: &str) -> bool {
    let tok = tok.trim();
    if tok.contains("f64::") || tok.contains("f32::") {
        return true;
    }
    // Numeric literal with a decimal point: 0.0, 2.5f64, -1.25e3.
    let t = tok.trim_start_matches(['-', '*', '&', '(']);
    let mut saw_digit = false;
    let mut saw_dot = false;
    for c in t.chars() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' if saw_digit => saw_dot = true,
            'e' | 'E' | '+' | '-' => {}
            'f' if saw_digit => break, // f64 suffix
            _ if !saw_digit => return false,
            _ => break,
        }
    }
    saw_digit && saw_dot
}

// ---------------------------------------------------------------- R5 ----

/// Tokens that introduce wall-clock time or entropy into the simulation.
const NONDETERMINISM: [(&str, &str); 6] = [
    ("std::time", "wall-clock time breaks trace replay"),
    ("SystemTime", "wall-clock time breaks trace replay"),
    ("Instant", "wall-clock time breaks trace replay"),
    ("from_entropy", "entropy-seeded RNG breaks trace replay"),
    ("thread_rng", "thread-local entropy RNG breaks trace replay"),
    ("random", "implicit entropy breaks trace replay"),
];

/// R5: determinism — only seeded randomness, no wall-clock reads.
fn r5_determinism(info: &FileInfo, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for (tok, why) in NONDETERMINISM {
            let hit = if tok.contains("::") {
                code.contains(tok)
            } else {
                has_token(code, tok)
            };
            if hit {
                out.push(diag(
                    Rule::Determinism,
                    info,
                    i,
                    &line.raw,
                    format!("`{tok}` outside the seeded harness plumbing: {why}"),
                ));
                break; // one diagnostic per line is enough
            }
        }
    }
}

// ---------------------------------------------------------------- R8 ----

/// R8: no wildcard `_ =>` arm in a match that also names a safety-critical
/// enum. The heuristic: an arm pattern containing `Enum::Variant` with
/// `Enum` in [`crate::scope::R8_ENUMS`] marks the match as a safety-enum
/// dispatch; a bare `_` arm (guarded or not) in the same match then hides
/// future variants. Arms belong to their innermost match, so an inner
/// tuple/Option match with a legitimate wildcard does not poison the outer
/// safety-enum dispatch (and vice versa).
fn r8_enum_exhaustiveness(
    info: &FileInfo,
    src: &SourceFile,
    facts: &FileFacts,
    out: &mut Vec<Diagnostic>,
) {
    for m in &facts.matches {
        if m.is_test {
            continue;
        }
        let mut heads: Vec<&str> = m
            .arms
            .iter()
            .flat_map(|a| a.enum_heads.iter())
            .map(String::as_str)
            .filter(|h| crate::scope::R8_ENUMS.contains(h))
            .collect();
        heads.sort_unstable();
        heads.dedup();
        if heads.is_empty() {
            continue;
        }
        for arm in m.arms.iter().filter(|a| a.wildcard) {
            let raw = src
                .lines
                .get(arm.line.saturating_sub(1))
                .map(|l| l.raw.trim().to_string())
                .unwrap_or_else(|| arm.pat.clone());
            out.push(Diagnostic {
                rule: Rule::EnumExhaustiveness,
                severity: Severity::Error,
                file: info.rel.clone(),
                line: arm.line,
                snippet: raw,
                message: format!(
                    "wildcard `_ =>` arm in a match over safety enum {}; name the \
                     remaining variants so adding one is a compile error, not a \
                     silently-ignored attack mode",
                    heads.join("/"),
                ),
            });
        }
    }
}

// --------------------------------------------------- R12/R14 (local) ----

/// The marker a file's docs must carry for `.lock().expect(…)` to be
/// acceptable under R12: a paragraph starting `lock poisoning policy:`
/// explaining why dying on poison is the right failure mode here (or why
/// poison is unreachable). Files that instead recover via
/// `PoisonError::into_inner` never produce the finding in the first place.
pub const POISON_POLICY_MARKER: &str = "lock poisoning policy:";

/// R12 (local half): every `Mutex::lock` guard consumed by
/// `.expect(…)`/`.unwrap()` must be covered by a documented poisoning
/// policy in the same file. Without one, a panic in any other guard holder
/// turns every later lock attempt into a cascade of worker deaths — the
/// exact failure mode the pool's panic latch exists to prevent.
fn r12_expect_policy(
    info: &FileInfo,
    src: &SourceFile,
    facts: &FileFacts,
    out: &mut Vec<Diagnostic>,
) {
    let documented = src
        .lines
        .iter()
        .any(|l| l.raw.contains(POISON_POLICY_MARKER));
    if documented {
        return;
    }
    for f in facts.fns.iter().filter(|f| !f.is_test) {
        for ev in &f.locks {
            if ev.op == crate::parser::LockOp::Acquire && ev.expect {
                let snippet = src
                    .lines
                    .get(ev.line.saturating_sub(1))
                    .map(|l| l.raw.trim().to_string())
                    .unwrap_or_default();
                out.push(diag(
                    Rule::LockDiscipline,
                    info,
                    ev.line.saturating_sub(1),
                    &snippet,
                    format!(
                        "`.lock()` guard on `{}` consumed by expect/unwrap with no \
                         documented poisoning policy; recover with \
                         `.unwrap_or_else(PoisonError::into_inner)` or document a \
                         `{POISON_POLICY_MARKER}` in this file",
                        ev.what
                    ),
                ));
            }
        }
    }
}

/// R14 (local half): `static mut` is shared mutable state with no
/// synchronization story at all — any access order is a data race the
/// compiler cannot see, and campaign results touching one are
/// scheduling-dependent by construction.
fn r14_static_mut(info: &FileInfo, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if let Some(pos) = find_token(&line.code, "static") {
            if line.code[pos + "static".len()..].trim_start().starts_with("mut ") {
                out.push(diag(
                    Rule::SharedStateDeterminism,
                    info,
                    i,
                    &line.raw,
                    "`static mut` is unsynchronized shared mutable state; use an \
                     atomic, a `Mutex`, or thread-local state instead"
                        .into(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::classify;
    use crate::tokenizer::tokenize;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let info = classify(path);
        let file = tokenize(src);
        let facts = crate::parser::parse(&file);
        let mut out = local_rules(&info, &file, &facts);
        out.retain(|d| !file.is_suppressed(d.line, d.rule));
        out
    }

    #[test]
    fn r8_flags_wildcard_over_safety_enum() {
        let d = check(
            "crates/core/src/x.rs",
            "fn f(t: AttackType) -> u8 {\n  match t {\n    AttackType::Acceleration => 1,\n    _ => 0,\n  }\n}\n",
        );
        assert_eq!(
            d.iter().filter(|d| d.rule == Rule::EnumExhaustiveness).count(),
            1,
            "{d:?}"
        );
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn r8_ignores_non_safety_enums_tests_and_inner_matches() {
        // Wildcard over a non-safety enum: fine.
        let d = check(
            "crates/core/src/x.rs",
            "fn f(p: Payload) -> u8 {\n  match p {\n    Payload::Tick => 1,\n    _ => 0,\n  }\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::EnumExhaustiveness), "{d:?}");
        // Inner tuple match with a wildcard nested under safety-enum arms:
        // the wildcard belongs to the inner match, no finding.
        let d = check(
            "crates/core/src/x.rs",
            "fn f(a: AttackAction, x: Option<u8>) -> bool {\n\
             match a {\n\
               AttackAction::Accelerate => match (x, x) {\n\
                 (Some(_), Some(_)) => true,\n\
                 _ => false,\n\
               },\n\
               AttackAction::Decelerate => false,\n\
               AttackAction::Steer(_) => false,\n\
             }\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::EnumExhaustiveness), "{d:?}");
        // Test code is exempt.
        let d = check(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n  fn f(t: AttackType) -> u8 {\n    match t { AttackType::Acceleration => 1, _ => 0 }\n  }\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::EnumExhaustiveness), "{d:?}");
    }

    #[test]
    fn r8_wildcard_respects_inline_allow() {
        let d = check(
            "crates/core/src/x.rs",
            "fn f(t: AttackType) -> u8 {\n  match t {\n    AttackType::Acceleration => 1,\n    _ => 0, // adas-lint: allow(R8, reason = \"forward-compat shim\")\n  }\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::EnumExhaustiveness), "{d:?}");
    }

    #[test]
    fn r1_flags_raw_f64_pub_fn() {
        let d = check(
            "crates/openadas/src/x.rs",
            "pub fn set_speed(&mut self, speed: f64) {}\n",
        );
        assert!(d.iter().any(|d| d.rule == Rule::UnitSafety), "{d:?}");
    }

    #[test]
    fn r1_ignores_newtype_api_and_private_fn() {
        let d = check(
            "crates/openadas/src/x.rs",
            "pub fn set_speed(&mut self, speed: Speed) {}\nfn helper(x: f64) {}\npub(crate) fn h2(x: f64) {}\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::UnitSafety), "{d:?}");
    }

    #[test]
    fn r2_flags_unwrap_and_indexing_but_not_unwrap_or() {
        let d = check(
            "crates/canbus/src/x.rs",
            "fn f(v: &[u8]) -> u8 { v.first().copied().unwrap_or(0) }\nfn g(v: &[u8]) -> u8 { v[0] }\nfn h(o: Option<u8>) -> u8 { o.unwrap() }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::PanicFreedom).count(), 2, "{d:?}");
    }

    #[test]
    fn r2_skips_tests_and_other_crates() {
        let d = check(
            "crates/canbus/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = check("crates/platform/src/x.rs", "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n");
        assert!(d.iter().all(|d| d.rule != Rule::PanicFreedom), "{d:?}");
    }

    #[test]
    fn r3_flags_actuator_write_outside_designated_modules() {
        let d = check("crates/platform/src/x.rs", "fn f(c: &mut CarControl) { c.accel = a; }\n");
        assert!(d.iter().any(|d| d.rule == Rule::ActuatorContainment), "{d:?}");
        let d = check(
            "crates/core/src/corruption.rs",
            "fn f(c: &mut CarControl) { c.accel = a; }\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::ActuatorContainment), "{d:?}");
    }

    #[test]
    fn r3_ignores_reads_comparisons_and_longer_fields() {
        let d = check(
            "crates/platform/src/x.rs",
            "fn f(c: &C) { if c.accel == x {} let v = c.steer; s.steering_angle = q; }\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::ActuatorContainment), "{d:?}");
    }

    #[test]
    fn r4_flags_float_eq_and_nan_unchecked_sort() {
        let d = check("crates/driving-sim/src/x.rs", "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert!(d.iter().any(|d| d.rule == Rule::FloatHygiene), "{d:?}");
        let d = check(
            "crates/platform/src/x.rs",
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        );
        assert!(d.iter().any(|d| d.rule == Rule::FloatHygiene), "{d:?}");
    }

    #[test]
    fn r4_ignores_integer_eq() {
        let d = check("crates/platform/src/x.rs", "fn f(x: usize) -> bool { x == 0 || x != 3 }\n");
        assert!(d.iter().all(|d| d.rule != Rule::FloatHygiene), "{d:?}");
    }

    #[test]
    fn r5_flags_wall_clock_and_entropy() {
        for bad in [
            "use std::time::Instant;\n",
            "let t = SystemTime::now();\n",
            "let rng = StdRng::from_entropy();\n",
        ] {
            let d = check("crates/driving-sim/src/x.rs", bad);
            assert!(d.iter().any(|d| d.rule == Rule::Determinism), "{bad}: {d:?}");
        }
        let d = check(
            "crates/driving-sim/src/x.rs",
            "let rng = StdRng::seed_from_u64(seed);\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::Determinism), "{d:?}");
    }

    #[test]
    fn r5_exempts_bench_crate() {
        let d = check(
            "crates/bench/benches/x.rs",
            "let t0 = std::time::Instant::now();\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn suppression_silences_a_finding() {
        let d = check(
            "crates/canbus/src/x.rs",
            "fn h(o: Option<u8>) -> u8 { o.unwrap() } // adas-lint: allow(R2, reason = \"demo\")\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn r12_expect_without_poisoning_policy_fires() {
        let d = check(
            "crates/platform/src/pool.rs",
            "fn f(&self) { let g = self.state.lock().expect(\"pool lock\"); }\n",
        );
        assert_eq!(
            d.iter().filter(|d| d.rule == Rule::LockDiscipline).count(),
            1,
            "{d:?}"
        );
        assert!(d[0].message.contains("poisoning policy"), "{}", d[0].message);
    }

    #[test]
    fn r12_documented_policy_or_recovery_is_silent() {
        // A `lock poisoning policy:` paragraph anywhere in the file covers
        // every expect-consumed guard in it.
        let d = check(
            "crates/platform/src/pool.rs",
            "//! lock poisoning policy: workers never panic while holding these.\n\
             fn f(&self) { let g = self.state.lock().expect(\"pool lock\"); }\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::LockDiscipline), "{d:?}");
        // Recovery via `PoisonError::into_inner` never sets the expect flag.
        let d = check(
            "crates/platform/src/pool.rs",
            "fn f(&self) { let g = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::LockDiscipline), "{d:?}");
    }

    #[test]
    fn r12_is_scoped_to_concurrency_crates_and_skips_tests() {
        // The lint crate itself is outside the concurrency scope.
        let d = check(
            "crates/lint/src/x.rs",
            "fn f(&self) { let g = self.state.lock().expect(\"x\"); }\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::LockDiscipline), "{d:?}");
        let d = check(
            "crates/platform/src/pool.rs",
            "#[cfg(test)]\nmod tests {\n  fn t(&self) { let g = self.state.lock().expect(\"x\"); }\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != Rule::LockDiscipline), "{d:?}");
    }

    #[test]
    fn r14_static_mut_fires_outside_tests() {
        let d = check(
            "crates/platform/src/x.rs",
            "static mut COUNTER: u64 = 0;\n",
        );
        assert_eq!(
            d.iter()
                .filter(|d| d.rule == Rule::SharedStateDeterminism)
                .count(),
            1,
            "{d:?}"
        );
        // `static` without `mut` (and test code) stay silent.
        let d = check(
            "crates/platform/src/x.rs",
            "static NAME: &str = \"pool\";\n#[cfg(test)]\nmod tests {\n  static mut T: u64 = 0;\n}\n",
        );
        assert!(
            d.iter().all(|d| d.rule != Rule::SharedStateDeterminism),
            "{d:?}"
        );
    }
}
