//! Deterministic fuzz smoke test for the tokenizer → parser → IR
//! pipeline. No external fuzzer: a fixed-seed splitmix64 stream drives
//! byte-level mutations (splice, truncate, duplicate, crossover) of a
//! small corpus of realistic sources, and every mutant must flow through
//! `tokenize` → `parse` → `lower` → `scan_source` without panicking and
//! with bit-identical results on a second pass.
//!
//! The budget is deliberately small (a few hundred mutants, well under a
//! minute even in debug CI) — this is a smoke test for crash-freedom and
//! determinism on malformed input, not a coverage hunt.

use adas_lint::{ir, parser, scan_source, tokenizer};

/// splitmix64 — the same generator the workspace uses for seed derivation
/// (`units::mix`), restated locally because the lint crate only links
/// `platform` and the test needs a raw stream, not seed mixing.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Seed corpus: small but representative of what the real scan sees —
/// impls, loops, matches, consts, clamps, raw strings, attributes,
/// suppression comments, and deliberately unbalanced fragments.
const CORPUS: [&str; 8] = [
    "pub fn accel(v: f64) -> f64 {\n    let a = v.clamp(-4.0, 2.4);\n    a * 0.5\n}\n",
    "impl Controller {\n    fn step(&mut self, e: f64) -> f64 {\n        self.i += e;\n        (self.kp * e + self.ki * self.i).clamp(self.lo, self.hi)\n    }\n}\n",
    "const MAX: f64 = 5.0;\nconst MIN: f64 = -9.8;\npub fn env(x: f64) -> f64 {\n    x.max(MIN).min(MAX)\n}\n",
    "fn walk(xs: &[f64]) -> f64 {\n    let mut s = 0.0;\n    while let Some(x) = it.next() {\n        s += x;\n    }\n    s\n}\n",
    "fn pick(k: Kind) -> u8 {\n    match k {\n        Kind::A => 1,\n        Kind::B | Kind::C => 2,\n        _ => 0,\n    }\n}\n",
    "// adas-lint: allow(R2, reason = \"bounded by construction\")\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
    "fn s() -> &'static str {\n    let _c = 'x';\n    r#\"raw \"quoted\" text with } and {\"#\n}\n",
    "#[derive(Debug)]\nstruct P { x: f64 }\nfn g(p: P) -> f64 { if p.x > 0.0 { p.x.sqrt() } else { 0.0 } }\n",
];

/// Bytes that stress the tokenizer's state machine when spliced in.
const SPICE: &[u8] = b"\"'{}()[]/*!#\\\n\r\t =><.:;,_r0x";

fn mutate(rng: &mut Rng) -> String {
    let base = CORPUS[rng.below(CORPUS.len())].as_bytes().to_vec();
    let mut bytes = base;
    for _ in 0..=rng.below(4) {
        match rng.below(4) {
            // Splice a run of stress bytes at a random position.
            0 => {
                let at = rng.below(bytes.len() + 1);
                let n = 1 + rng.below(8);
                let run: Vec<u8> = (0..n).map(|_| SPICE[rng.below(SPICE.len())]).collect();
                bytes.splice(at..at, run);
            }
            // Truncate mid-token.
            1 => {
                let at = rng.below(bytes.len() + 1);
                bytes.truncate(at);
            }
            // Duplicate a random slice (unbalances delimiters nicely).
            2 => {
                if !bytes.is_empty() {
                    let a = rng.below(bytes.len());
                    let b = a + rng.below(bytes.len() - a);
                    let slice = bytes[a..b].to_vec();
                    let at = rng.below(bytes.len() + 1);
                    bytes.splice(at..at, slice);
                }
            }
            // Crossover: prefix of this mutant, suffix of another seed.
            _ => {
                let other = CORPUS[rng.below(CORPUS.len())].as_bytes();
                let cut_a = rng.below(bytes.len() + 1);
                let cut_b = rng.below(other.len() + 1);
                bytes.truncate(cut_a);
                bytes.extend_from_slice(&other[cut_b..]);
            }
        }
    }
    // The pipeline takes &str; keep whatever survives lossy conversion.
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn mutated_sources_never_panic_and_stay_deterministic() {
    let mut rng = Rng(0x5EED_AD05_11A7_2026);
    for case in 0..400u32 {
        let src = mutate(&mut rng);

        let run = |s: &str| {
            let file = tokenizer::tokenize(s);
            let facts = parser::parse(&file);
            let lowered = ir::lower(&file);
            let diags = scan_source("crates/openadas/src/fuzzed.rs", s);
            (
                format!("{facts:?}"),
                format!("{lowered:?}"),
                diags.len(),
            )
        };

        let first = run(&src);
        let second = run(&src);
        assert_eq!(
            first, second,
            "pipeline output changed between identical runs on case {case}:\n{src}"
        );
    }
}

#[test]
fn semantic_rules_survive_mutated_sources() {
    // The abstract interpreter runs over whatever the parser produced,
    // however mangled; a smaller budget because full analysis is pricier.
    let mut rng = Rng(0xF1E1_D5EE_D000_0002);
    for case in 0..120u32 {
        let src = mutate(&mut rng);
        let file = tokenizer::tokenize(&src);
        let sem = adas_lint::absint::SemFile::new("crates/openadas/src/fuzzed.rs".into(), file, true, true);
        let d1 = adas_lint::absint::semantic_rules(std::slice::from_ref(&sem));
        let d2 = adas_lint::absint::semantic_rules(std::slice::from_ref(&sem));
        let render = |ds: &[adas_lint::Diagnostic]| -> Vec<String> {
            ds.iter().map(|d| d.render_human()).collect()
        };
        assert_eq!(
            render(&d1),
            render(&d2),
            "semantic analysis nondeterministic on case {case}:\n{src}"
        );
    }
}
