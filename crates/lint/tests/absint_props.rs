//! Property tests for the interval domain behind adas-lint's semantic
//! rules (R9–R11). Two families:
//!
//! 1. **Widening termination** — the widening operator must reach a
//!    fixpoint in a bounded number of steps no matter what sequence of
//!    intervals the loop body produces, or the analyzer's loop fixpoint
//!    would not terminate.
//! 2. **Differential soundness** — for random expression trees evaluated
//!    both concretely (on `f64` points) and abstractly (on intervals
//!    containing those points), the concrete result must land inside the
//!    abstract interval. This is the soundness statement R9 relies on:
//!    if the interval maths ever under-approximated, "proved bounded"
//!    would be a lie.
//!
//! NaN is out of scope here by design: the `Interval` domain tracks
//! magnitudes only, and NaN-production is tracked separately by the
//! analyzer's `maybe_nan` flag (see `absint`). A concrete NaN result
//! therefore exits the containment check.

use adas_lint::interval::Interval;
use proptest::prelude::*;

/// A sorted, finite pair — the raw material for a well-formed interval.
fn bounds() -> impl Strategy<Value = (f64, f64)> {
    (-1e9..1e9f64, -1e9..1e9f64).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
}

/// One stack-machine instruction of a random expression tree.
///
/// Trees are encoded in reverse Polish order so they can be drawn as a
/// flat `Vec` with the shim's strategies: `Leaf` pushes a (point,
/// interval) pair with the point inside the interval; the operators pop
/// one or two operands and push the result computed concretely and
/// abstractly in lockstep.
#[derive(Debug, Clone, Copy)]
enum Op {
    Leaf,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Abs,
    Min,
    Max,
    Sqrt,
    Clamp,
}

const OPS: [Op; 11] = [
    Op::Leaf,
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::Neg,
    Op::Abs,
    Op::Min,
    Op::Max,
    Op::Sqrt,
    Op::Clamp,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn widening_reaches_a_fixpoint_in_bounded_steps(
        seqs in prop::collection::vec(bounds(), 1..24),
        start in bounds(),
    ) {
        let mut w = Interval::new(start.0, start.1);
        let mut stable_at = None;
        // Mimic the analyzer's loop: join in the next body state, widen
        // against the previous head state, stop when nothing moves.
        for (i, (lo, hi)) in seqs.iter().enumerate() {
            let next = w.join(Interval::new(*lo, *hi));
            let widened = Interval::widen(w, next);
            // Widening must over-approximate both its arguments…
            prop_assert!(widened.lo <= w.lo && widened.hi >= w.hi);
            prop_assert!(widened.lo <= next.lo && widened.hi >= next.hi);
            if widened.lo.to_bits() == w.lo.to_bits() && widened.hi.to_bits() == w.hi.to_bits() {
                stable_at = Some(i);
                break;
            }
            w = widened;
        }
        // …and each bound can only move once (straight to ±∞), so the
        // chain stabilises after at most two widening steps.
        if stable_at.is_none() {
            prop_assert!(
                seqs.len() <= 2,
                "widening failed to stabilise after {} steps: {w:?}",
                seqs.len()
            );
        }
    }

    #[test]
    fn widened_interval_is_a_post_fixpoint(a in bounds(), b in bounds()) {
        let prev = Interval::new(a.0, a.1);
        let next = Interval::new(b.0, b.1);
        let w = Interval::widen(prev, next);
        // Re-widening with anything already inside `w` must be a no-op:
        // that is what makes the analyzer's "one final unmuted pass"
        // sound after the fixpoint loop exits.
        let again = Interval::widen(w, w.join(next));
        prop_assert!(again.lo.to_bits() == w.lo.to_bits() && again.hi.to_bits() == w.hi.to_bits());
    }

    #[test]
    fn random_expression_trees_are_soundly_abstracted(
        ops in prop::collection::vec(prop::sample::select(OPS.to_vec()), 1..40),
        leaves in prop::collection::vec((bounds(), 0.0..1.0f64), 40),
        clamps in prop::collection::vec(bounds(), 40),
    ) {
        // Stack of (concrete point, abstract interval) pairs, kept in
        // lockstep. Leaves place the point inside the interval by linear
        // interpolation, so containment holds at the base case.
        let mut stack: Vec<(f64, Interval)> = Vec::new();
        let mut leaf_i = 0usize;
        let mut clamp_i = 0usize;

        let leaf = |i: &mut usize| {
            let ((lo, hi), t) = leaves[*i % leaves.len()];
            *i += 1;
            let point = lo + (hi - lo) * t;
            let point = point.clamp(lo, hi); // guard rounding at the ends
            (point, Interval::new(lo, hi))
        };

        for op in &ops {
            match op {
                Op::Leaf => stack.push(leaf(&mut leaf_i)),
                Op::Neg | Op::Abs | Op::Sqrt => {
                    let (c, iv) = stack.pop().unwrap_or_else(|| leaf(&mut leaf_i));
                    let out = match op {
                        Op::Neg => (-c, iv.neg()),
                        Op::Abs => (c.abs(), iv.abs()),
                        _ => (c.sqrt(), iv.sqrt()),
                    };
                    stack.push(out);
                }
                Op::Clamp => {
                    let (c, iv) = stack.pop().unwrap_or_else(|| leaf(&mut leaf_i));
                    let (lo, hi) = clamps[clamp_i % clamps.len()];
                    clamp_i += 1;
                    let clamped = if c.is_nan() { c } else { c.clamp(lo, hi) };
                    stack.push((clamped, iv.clamp(Interval::point(lo), Interval::point(hi))));
                }
                Op::Min | Op::Max => {
                    let (rc, riv) = stack.pop().unwrap_or_else(|| leaf(&mut leaf_i));
                    let (lc, liv) = stack.pop().unwrap_or_else(|| leaf(&mut leaf_i));
                    // `Interval::min`/`max` are the both-clean shapes; the
                    // analyzer's NumVal layer handles NaN laundering
                    // (`f64::min(NaN, x)` returns `x`) by re-admitting the
                    // clean operand's range whenever the other side may be
                    // NaN. The harness mirrors that rule with the concrete
                    // NaN status standing in for `maybe_nan`.
                    let mut iv = if matches!(op, Op::Min) {
                        liv.min(riv)
                    } else {
                        liv.max(riv)
                    };
                    if lc.is_nan() {
                        iv = iv.join(riv);
                    }
                    if rc.is_nan() {
                        iv = iv.join(liv);
                    }
                    let c = if matches!(op, Op::Min) { lc.min(rc) } else { lc.max(rc) };
                    stack.push((c, iv));
                }
                _ => {
                    let (rc, riv) = stack.pop().unwrap_or_else(|| leaf(&mut leaf_i));
                    let (lc, liv) = stack.pop().unwrap_or_else(|| leaf(&mut leaf_i));
                    let out = match op {
                        Op::Add => (lc + rc, liv.add(riv)),
                        Op::Sub => (lc - rc, liv.sub(riv)),
                        Op::Mul => (lc * rc, liv.mul(riv)),
                        _ => (lc / rc, liv.div(riv)),
                    };
                    stack.push(out);
                }
            }
            // The invariant holds at every intermediate node, not just
            // the root — check as we go so a violation points at the
            // exact operator that broke soundness.
            let (c, iv) = *stack.last().expect("stack is never empty after an op");
            if !c.is_nan() {
                prop_assert!(
                    iv.contains(c),
                    "concrete {c} escaped abstract {iv:?} after {} ops",
                    ops.len()
                );
            }
        }
    }

    #[test]
    fn join_over_approximates_both_sides(a in bounds(), b in bounds(), t in 0.0..1.0f64) {
        let ia = Interval::new(a.0, a.1);
        let ib = Interval::new(b.0, b.1);
        let j = ia.join(ib);
        let pa = (a.0 + (a.1 - a.0) * t).clamp(a.0, a.1);
        let pb = (b.0 + (b.1 - b.0) * t).clamp(b.0, b.1);
        prop_assert!(j.contains(pa) && j.contains(pb));
    }

    #[test]
    fn meet_is_exact_intersection(a in bounds(), b in bounds(), t in 0.0..1.0f64) {
        let ia = Interval::new(a.0, a.1);
        let ib = Interval::new(b.0, b.1);
        let p = (a.0 + (a.1 - a.0) * t).clamp(a.0, a.1);
        match ia.meet(ib) {
            Some(m) => prop_assert!(m.contains(p) == (ia.contains(p) && ib.contains(p))),
            None => prop_assert!(!(ia.contains(p) && ib.contains(p))),
        }
    }
}
