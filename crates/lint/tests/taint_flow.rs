//! End-to-end R6/R7 coverage: the taint-flow gate must fail a workspace
//! that routes attack values around the Injector choke point — and must
//! pass the real workspace, whose safety envelope the rules exist to prove.

use adas_lint::{
    default_baseline_path, load_baseline, scan_sources, scan_workspace,
    workspace_root_from_manifest, Baseline, Rule,
};

/// A bypass route — attacker code writing CAN bytes directly — fails R6
/// with the full flow chain in the message.
#[test]
fn unclamped_bypass_path_fails_with_flow_chain() {
    let diags = scan_sources(&[
        (
            "crates/core/src/engine.rs",
            "impl AttackEngine {\n    pub fn emit(&mut self, enc: &mut CommandEncoder) {\n        exfiltrate(enc);\n    }\n}\npub fn exfiltrate(enc: &mut CommandEncoder) {\n    enc.encode();\n}\n",
        ),
        (
            "crates/canbus/src/encoder.rs",
            "pub struct CommandEncoder;\nimpl CommandEncoder {\n    pub fn encode(&mut self) {}\n}\n",
        ),
    ]);
    let r6: Vec<_> = diags.iter().filter(|d| d.rule == Rule::TaintFlow).collect();
    assert!(!r6.is_empty(), "expected an R6 finding, got: {diags:?}");
    assert!(
        r6.iter()
            .any(|d| d.message.contains("exfiltrate → CommandEncoder::encode")),
        "the report must print the full flow chain: {r6:?}"
    );
    assert!(
        r6.iter().all(|d| d.file == "crates/core/src/engine.rs"),
        "the finding anchors at the attack-side origin: {r6:?}"
    );
}

/// The same reach, routed through the audited `Injector` choke: clean.
#[test]
fn choked_path_passes() {
    let diags = scan_sources(&[
        (
            "crates/core/src/engine.rs",
            "impl AttackEngine {\n    pub fn emit(&mut self, inj: &mut Injector, enc: &mut CommandEncoder) {\n        inj.apply(enc);\n    }\n}\n",
        ),
        (
            "crates/core/src/injector.rs",
            "pub struct Injector;\nimpl Injector {\n    pub fn apply(&mut self, enc: &mut CommandEncoder) {\n        enc.encode();\n    }\n}\n",
        ),
        (
            "crates/canbus/src/encoder.rs",
            "pub struct CommandEncoder;\nimpl CommandEncoder {\n    pub fn encode(&mut self) {}\n}\n",
        ),
    ]);
    assert!(
        diags.iter().all(|d| d.rule != Rule::TaintFlow),
        "Injector::apply is the sanctioned route: {diags:?}"
    );
}

/// Minting unclamped attack values in the origin module is caught at the
/// definition, before any flow exists.
#[test]
fn unclamped_minting_fails_r6a() {
    let diags = scan_sources(&[(
        "crates/core/src/corruption.rs",
        "impl CorruptionPolicy {\n    pub fn values(&mut self) -> AttackValues {\n        AttackValues::saturated()\n    }\n}\n",
    )]);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::TaintFlow && d.message.contains("mints")),
        "{diags:?}"
    );
}

/// ADAS code consuming attacker APIs dissolves the trust boundary (R6c).
#[test]
fn adas_to_attack_backflow_fails() {
    let diags = scan_sources(&[
        (
            "crates/openadas/src/controls.rs",
            "impl Controls {\n    pub fn update(&mut self) {\n        attack_hint();\n    }\n}\n",
        ),
        ("crates/core/src/engine.rs", "pub fn attack_hint() {}\n"),
    ]);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::TaintFlow && d.message.contains("trust boundary")),
        "{diags:?}"
    );
}

/// A panic reachable from `Harness::step` is reported with its call chain
/// (R7); moving the panic behind a test gate clears it.
#[test]
fn panic_reachable_from_harness_step_fails_r7() {
    let diags = scan_sources(&[(
        "crates/platform/src/harness.rs",
        "impl Harness {\n    pub fn step(&mut self) {\n        helper();\n    }\n}\nfn helper() {\n    danger();\n}\nfn danger() {\n    maybe().unwrap();\n}\n",
    )]);
    let r7: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::TransitivePanic)
        .collect();
    assert!(!r7.is_empty(), "{diags:?}");
    assert!(
        r7.iter()
            .any(|d| d.message.contains("Harness::step → helper → danger")),
        "{r7:?}"
    );
}

/// The real workspace satisfies the invariant the rules encode: zero
/// active findings of any rule, with an *empty* baseline — every
/// acknowledged site is an inline allow with its reason next to the code.
#[test]
fn real_workspace_proves_the_envelope_with_empty_baseline() {
    let root = workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let baseline_text =
        std::fs::read_to_string(default_baseline_path(&root)).expect("baseline file exists");
    let parsed = Baseline::parse(&baseline_text).expect("baseline parses");
    assert!(
        parsed.unused().is_empty(),
        "the baseline must ship empty after the R1 burn-down; found entries: {:?}",
        parsed.unused()
    );

    let baseline = load_baseline(&default_baseline_path(&root)).expect("baseline parses");
    let report = scan_workspace(&root, Some(baseline)).expect("workspace scan succeeds");
    assert!(
        report.active.is_empty() && report.dead_suppressions.is_empty(),
        "the workspace must prove R1–R8 clean: {:?} {:?}",
        report.active,
        report.dead_suppressions
    );
    assert_eq!(report.baselined, 0, "nothing left to grandfather");
}
