//! The gate's self-checks: the facts cache may change wall-time but never
//! results, dead suppressions fail the build, and stale baseline entries
//! fail the build. Each test scans a tiny synthetic workspace under
//! `CARGO_TARGET_TMPDIR`.

use adas_lint::{scan_workspace_with, Baseline, Rule, ScanOptions, Severity};
use std::fs;
use std::path::PathBuf;

/// Creates a fresh workspace directory named after the calling test.
fn temp_ws(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/openadas/src")).expect("mkdir");
    dir
}

fn opts(cache_dir: Option<PathBuf>, use_cache: bool) -> ScanOptions {
    ScanOptions {
        use_cache,
        cache_dir,
        parallel: false,
        ..ScanOptions::default()
    }
}

#[test]
fn cache_changes_wall_time_never_results() {
    let ws = temp_ws("cache_equivalence");
    fs::write(
        ws.join("crates/openadas/src/lib.rs"),
        "fn helper(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\npub fn fine() {}\n",
    )
    .expect("write");
    let cache = ws.join("lint-cache");

    let cold = scan_workspace_with(&ws, None, &opts(Some(cache.clone()), true)).expect("cold");
    let warm = scan_workspace_with(&ws, None, &opts(Some(cache.clone()), true)).expect("warm");
    let uncached = scan_workspace_with(&ws, None, &opts(None, false)).expect("uncached");

    assert_eq!(cold.cache_hits, 0, "first scan populates the cache");
    assert_eq!(warm.cache_hits, warm.files_scanned, "second scan hits it");
    assert_eq!(uncached.cache_hits, 0);

    let render = |r: &adas_lint::ScanReport| -> Vec<String> {
        r.active.iter().map(|d| d.render_human()).collect()
    };
    assert_eq!(render(&cold), render(&warm), "cache must not change results");
    assert_eq!(render(&cold), render(&uncached));
    assert!(
        cold.active.iter().any(|d| d.rule == Rule::PanicFreedom),
        "the planted unwrap is found either way: {:?}",
        cold.active
    );
}

#[test]
fn editing_a_file_invalidates_only_its_entry() {
    let ws = temp_ws("cache_invalidation");
    let lib = ws.join("crates/openadas/src/lib.rs");
    let other = ws.join("crates/openadas/src/steady.rs");
    fs::write(&lib, "fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n").expect("write");
    fs::write(&other, "pub fn untouched() {}\n").expect("write");
    let cache = ws.join("lint-cache");
    let o = opts(Some(cache), true);

    let first = scan_workspace_with(&ws, None, &o).expect("scan");
    assert_eq!(first.active.len(), 1, "{:?}", first.active);

    // Fix the violation; only the edited file recomputes.
    fs::write(&lib, "fn f(v: Option<u8>) -> u8 {\n    v.unwrap_or(0)\n}\n").expect("write");
    let second = scan_workspace_with(&ws, None, &o).expect("scan");
    assert!(second.active.is_empty(), "{:?}", second.active);
    assert_eq!(
        second.cache_hits,
        second.files_scanned - 1,
        "the unchanged file stays cached"
    );
}

#[test]
fn cache_entries_are_keyed_by_rule_set() {
    // Regression test: cached per-file facts are filtered to the active rule
    // set before they are stored, so a cache populated by a subset scan must
    // never satisfy a full scan. The scan key folds the rule-set fingerprint
    // into the content hash; a shared cache dir therefore keeps the scans
    // independent.
    let ws = temp_ws("cache_rule_set_key");
    fs::write(
        ws.join("crates/openadas/src/lib.rs"),
        "fn helper(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\npub fn fine() {}\n",
    )
    .expect("write");
    let cache = ws.join("lint-cache");

    // Populate the cache with a scan that does NOT run R2 (panic-freedom).
    let subset = ScanOptions {
        rules: vec![Rule::UnitSafety],
        ..opts(Some(cache.clone()), true)
    };
    let narrow = scan_workspace_with(&ws, None, &subset).expect("subset scan");
    assert!(
        narrow.active.iter().all(|d| d.rule == Rule::UnitSafety),
        "subset scan must only report requested rules: {:?}",
        narrow.active
    );

    // A full scan over the same cache dir must still see the unwrap: its
    // scan key differs, so the narrow entry cannot be (wrongly) reused.
    let full = scan_workspace_with(&ws, None, &opts(Some(cache), true)).expect("full scan");
    assert_eq!(full.cache_hits, 0, "full scan must not reuse subset entries");
    assert!(
        full.active.iter().any(|d| d.rule == Rule::PanicFreedom),
        "the planted unwrap must survive a warm subset cache: {:?}",
        full.active
    );
}

#[test]
fn concurrency_facts_are_part_of_the_scan_key() {
    // Same regression for the concurrency layer: a subset scan that skips
    // R12–R14 has no reason to store lock events or allocation facts, so
    // its entries must never satisfy a scan that needs them. The rule-set
    // fingerprint folds the R12–R14 tables into the scan key, which keeps
    // the two caches disjoint.
    let ws = temp_ws("cache_concurrency_key");
    fs::create_dir_all(ws.join("crates/platform/src")).expect("mkdir");
    fs::write(
        ws.join("crates/platform/src/lib.rs"),
        "pub static mut TICKS: u64 = 0;\n\
         pub struct Harness { buf: Vec<u64> }\n\
         impl Harness {\n\
             pub fn step(&mut self) { self.buf.push(1); }\n\
         }\n",
    )
    .expect("write");
    let cache = ws.join("lint-cache");

    // Populate the cache with a scan that runs none of R12–R14.
    let subset = ScanOptions {
        rules: vec![Rule::UnitSafety],
        ..opts(Some(cache.clone()), true)
    };
    let narrow = scan_workspace_with(&ws, None, &subset).expect("subset scan");
    assert!(
        narrow.active.is_empty(),
        "the planted violations are invisible to the subset: {:?}",
        narrow.active
    );

    // The full scan must recompute and see both planted violations.
    let full = scan_workspace_with(&ws, None, &opts(Some(cache), true)).expect("full scan");
    assert_eq!(full.cache_hits, 0, "full scan must not reuse subset entries");
    assert!(
        full.active.iter().any(|d| d.rule == Rule::SharedStateDeterminism),
        "the planted static mut must survive a warm subset cache: {:?}",
        full.active
    );
    assert!(
        full.active.iter().any(|d| d.rule == Rule::AllocFreedom),
        "the planted hot-path allocation must survive a warm subset cache: {:?}",
        full.active
    );
}

#[test]
fn dead_suppression_fails_the_gate_as_a_warning() {
    let ws = temp_ws("dead_suppression");
    fs::write(
        ws.join("crates/openadas/src/lib.rs"),
        "// adas-lint: allow(R2, reason = \"the unwrap this excused was removed\")\npub fn fine() {}\n",
    )
    .expect("write");

    let report = scan_workspace_with(&ws, None, &opts(None, false)).expect("scan");
    assert!(report.active.is_empty(), "{:?}", report.active);
    assert_eq!(report.dead_suppressions.len(), 1, "{:?}", report.dead_suppressions);
    let d = &report.dead_suppressions[0];
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.line, 2, "a standalone allow is anchored at the line it applies to");
    assert!(d.message.contains("dead suppression"), "{d:?}");
    assert!(!report.is_clean(), "a dead allow must fail the gate");

    // A suppression that absorbs its finding is counted, not reported.
    fs::write(
        ws.join("crates/openadas/src/lib.rs"),
        "// adas-lint: allow(R2, reason = \"bounded by construction\")\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
    )
    .expect("write");
    let report = scan_workspace_with(&ws, None, &opts(None, false)).expect("scan");
    assert!(report.dead_suppressions.is_empty(), "{:?}", report.dead_suppressions);
    assert_eq!(report.suppressed, 1);
    assert!(report.is_clean());
}

#[test]
fn stale_baseline_entry_fails_the_gate() {
    let ws = temp_ws("stale_baseline");
    fs::write(ws.join("crates/openadas/src/lib.rs"), "pub fn fine() {}\n").expect("write");

    let baseline = Baseline::parse(
        "R2\tcrates/openadas/src/lib.rs\tlet gone = removed.unwrap();\n",
    )
    .expect("baseline parses");
    let report = scan_workspace_with(&ws, Some(baseline), &opts(None, false)).expect("scan");
    assert!(report.active.is_empty(), "{:?}", report.active);
    assert_eq!(report.unused_baseline.len(), 1, "{:?}", report.unused_baseline);
    assert!(
        !report.is_clean(),
        "a baseline entry whose site is gone must fail until it is removed"
    );
}
