//! Golden fixtures for the concurrency/allocation layer (R12/R13/R14):
//! a seeded violation file whose (rule, line) findings are pinned in
//! `concurrency_violations.expected`, and a clean file proving the
//! analyzer can discharge every obligation it is asked to. Findings from
//! other layers on the same sources are out of scope here — `fixtures.rs`
//! owns the lexical rules and `semantic_fixtures.rs` the numeric ones —
//! so the assertions filter to the concurrency rules.

use std::path::Path;

use adas_lint::{sarif, scan_sources, Diagnostic, Rule};

/// The fixture is scanned as a platform lib file so the concurrency
/// scope (`scope::concurrency_applies`) covers it.
const FIXTURE_SCAN_PATH: &str = "crates/platform/src/fixture.rs";

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn concurrency_findings(source: &str) -> Vec<Diagnostic> {
    let mut diags = scan_sources(&[(FIXTURE_SCAN_PATH, source)]);
    diags.retain(|d| {
        matches!(
            d.rule,
            Rule::LockDiscipline | Rule::AllocFreedom | Rule::SharedStateDeterminism
        )
    });
    diags
}

#[test]
fn violating_fixture_matches_expected_findings() {
    let source = read_fixture("concurrency_violations.rs");
    let expected: Vec<(String, usize)> = read_fixture("concurrency_violations.expected")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let rule = parts.next().expect("rule id").to_owned();
            let line = parts
                .next()
                .expect("line number")
                .parse()
                .expect("line number parses");
            (rule, line)
        })
        .collect();

    let mut actual: Vec<(String, usize)> = concurrency_findings(&source)
        .into_iter()
        .map(|d| (d.rule.id().to_owned(), d.line))
        .collect();
    actual.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));

    let mut expected_sorted = expected;
    expected_sorted.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));

    assert_eq!(
        actual, expected_sorted,
        "concurrency fixture findings drifted from concurrency_violations.expected \
         — if the rule change is intentional, update the .expected file"
    );
}

#[test]
fn r13_diagnostic_carries_the_call_chain() {
    let source = read_fixture("concurrency_violations.rs");
    let diags = concurrency_findings(&source);
    let alloc = diags
        .iter()
        .find(|d| d.rule == Rule::AllocFreedom)
        .unwrap_or_else(|| panic!("no R13 finding in the fixture: {diags:?}"));
    // The message names the hot-path root the allocation is reachable
    // from, so the reader can judge the chain without re-deriving it.
    assert!(alloc.message.contains("Harness::step"), "{}", alloc.message);
    let human = alloc.render_human();
    assert!(human.contains("R13"), "{human}");
    assert!(human.contains(FIXTURE_SCAN_PATH), "{human}");
}

#[test]
fn concurrency_findings_render_to_valid_sarif() {
    let source = read_fixture("concurrency_violations.rs");
    let diags = concurrency_findings(&source);
    assert!(!diags.is_empty());
    let doc = sarif::emit(&diags);
    sarif::validate(&doc).expect("concurrency findings must emit valid SARIF");
    for rule in ["R12", "R13", "R14"] {
        assert!(
            doc.contains(&format!("\"ruleId\": \"{rule}\""))
                || doc.contains(&format!("\"ruleId\":\"{rule}\"")),
            "SARIF document lost {rule} results"
        );
    }
}

#[test]
fn clean_fixture_discharges_every_obligation() {
    let source = read_fixture("concurrency_clean.rs");
    let diags = concurrency_findings(&source);
    assert!(
        diags.is_empty(),
        "the clean concurrency fixture must prove out, got: {:#?}",
        diags
            .iter()
            .map(|d| d.render_human())
            .collect::<Vec<_>>()
    );
}
