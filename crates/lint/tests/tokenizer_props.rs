//! Property tests for the masking tokenizer — the correctness core of the
//! whole linter. Violation-looking text (`.unwrap()`, `panic!`, float `==`,
//! `std::time`) is planted inside comments, strings, raw strings, and char
//! literals; the properties assert the masked view never leaks it and that
//! masking preserves line/column alignment exactly.

use adas_lint::scan_source;
use adas_lint::tokenizer::tokenize;
use proptest::prelude::*;

/// Fragments that would each trip at least one rule if they appeared in code
/// position inside a safety-path crate.
fn violation_texts() -> Vec<&'static str> {
    vec![
        ".unwrap()",
        ".expect(\\\"boom\\\")",
        "panic!(\\\"no\\\")",
        "a == 0.0",
        "x != 1.5",
        "std::time::Instant::now()",
        "thread_rng()",
        "self.accel_cmd = 9.0;",
        "data[i]",
        "pub fn speed(v: f64)",
    ]
}

/// Same fragments, without escaping, for comment bodies.
fn violation_texts_plain() -> Vec<&'static str> {
    vec![
        ".unwrap()",
        ".expect(\"boom\")",
        "panic!(\"no\")",
        "a == 0.0",
        "x != 1.5",
        "std::time::Instant::now()",
        "thread_rng()",
        "self.accel_cmd = 9.0;",
        "data[i]",
        "pub fn speed(v: f64)",
    ]
}

/// Harmless code lines to interleave with the masked content.
fn filler_lines() -> Vec<&'static str> {
    vec![
        "fn ok() {}",
        "let x = 1;",
        "struct S;",
        "const N: usize = 4;",
        "",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Violations inside `//` line comments never produce findings.
    #[test]
    fn line_comments_never_leak(
        texts in prop::collection::vec(prop::sample::select(violation_texts_plain()), 1..6),
        fillers in prop::collection::vec(prop::sample::select(filler_lines()), 1..6),
    ) {
        let mut src = String::new();
        for (t, f) in texts.iter().zip(fillers.iter().cycle()) {
            src.push_str(&format!("// note: {t}\n{f}\n"));
        }
        let diags = scan_source("crates/openadas/src/gen.rs", &src);
        prop_assert!(diags.is_empty(), "comment text leaked: {diags:?}\nsource:\n{src}");
    }

    /// Violations inside ordinary string literals never produce findings.
    #[test]
    fn string_literals_never_leak(
        texts in prop::collection::vec(prop::sample::select(violation_texts()), 1..6),
    ) {
        let mut src = String::new();
        for (i, t) in texts.iter().enumerate() {
            src.push_str(&format!("fn f{i}() -> &'static str {{ \"{t}\" }}\n"));
        }
        let diags = scan_source("crates/openadas/src/gen.rs", &src);
        prop_assert!(diags.is_empty(), "string text leaked: {diags:?}\nsource:\n{src}");
    }

    /// Violations inside raw strings — including multi-line ones — never
    /// produce findings, and never desynchronize later real findings.
    #[test]
    fn raw_strings_never_leak_and_keep_lines_aligned(
        texts in prop::collection::vec(prop::sample::select(violation_texts_plain()), 1..5),
        multiline in any::<bool>(),
    ) {
        let mut src = String::new();
        for (i, t) in texts.iter().enumerate() {
            if multiline {
                src.push_str(&format!("fn f{i}() -> &'static str {{ r#\"line one\n{t}\nline three\"# }}\n"));
            } else {
                src.push_str(&format!("fn f{i}() -> &'static str {{ r#\"{t}\"# }}\n"));
            }
        }
        // A real violation after all the raw strings must be reported at its
        // true line number.
        let violation_line = src.lines().count() + 1;
        src.push_str("fn real(v: Option<u8>) -> u8 { v.unwrap() }\n");
        let diags = scan_source("crates/openadas/src/gen.rs", &src);
        prop_assert_eq!(diags.len(), 1, "only the real violation fires:\n{}", &src);
        prop_assert_eq!(diags[0].line, violation_line, "line numbers stay aligned");
    }

    /// Block comments (possibly nested) never leak.
    #[test]
    fn block_comments_never_leak(
        texts in prop::collection::vec(prop::sample::select(violation_texts_plain()), 1..5),
        nested in any::<bool>(),
    ) {
        let mut src = String::new();
        for t in &texts {
            if nested {
                src.push_str(&format!("/* outer /* inner {t} */ still comment {t} */\n"));
            } else {
                src.push_str(&format!("/* {t} */\n"));
            }
        }
        src.push_str("fn ok() {}\n");
        let diags = scan_source("crates/openadas/src/gen.rs", &src);
        prop_assert!(diags.is_empty(), "block comment leaked: {diags:?}\nsource:\n{src}");
    }

    /// Masking is shape-preserving: same number of lines as the input, and
    /// every masked line has exactly the char length of its raw line.
    #[test]
    fn masking_preserves_shape(
        texts in prop::collection::vec(prop::sample::select(violation_texts_plain()), 1..8),
        style in prop::sample::select(vec!["comment", "string", "raw", "block"]),
    ) {
        let mut src = String::new();
        for t in &texts {
            match style {
                "comment" => src.push_str(&format!("// {t}\n")),
                "string" => src.push_str(&format!("let s = \"{}\";\n", t.replace('"', ""))),
                "raw" => src.push_str(&format!("let s = r#\"{t}\"#;\n")),
                _ => src.push_str(&format!("/* {t} */ let x = 1;\n")),
            }
        }
        let file = tokenize(&src);
        prop_assert_eq!(file.lines.len(), src.lines().count());
        for (line, raw) in file.lines.iter().zip(src.lines()) {
            prop_assert_eq!(line.raw.as_str(), raw);
            prop_assert_eq!(
                line.code.chars().count(),
                raw.chars().count(),
                "masked line must align column-for-column with raw line {:?}",
                raw
            );
        }
    }

    /// Char literals (including escaped quotes) don't swallow following code.
    #[test]
    fn char_literals_do_not_desync(which in prop::sample::select(vec!['a', '"', '\'', '\\'])) {
        let lit = match which {
            '"' => "'\"'".to_owned(),
            '\'' => "'\\''".to_owned(),
            '\\' => "'\\\\'".to_owned(),
            c => format!("'{c}'"),
        };
        let src = format!("fn f() -> char {{ {lit} }}\nfn real(v: Option<u8>) -> u8 {{ v.unwrap() }}\n");
        let diags = scan_source("crates/openadas/src/gen.rs", &src);
        prop_assert_eq!(diags.len(), 1, "source:\n{}", &src);
        prop_assert_eq!(diags[0].line, 2);
    }
}
