//! The build gate: `cargo test` fails if the workspace picks up a safety
//! violation that is neither fixed, inline-allowed, nor baselined — and the
//! gate itself is tested by injecting the violations the paper's threat
//! model cares about and asserting the rules fire.

use adas_lint::{
    default_baseline_path, load_baseline, scan_source, scan_workspace,
    workspace_root_from_manifest, Rule,
};

fn workspace_root() -> std::path::PathBuf {
    workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_has_no_unacknowledged_findings() {
    let root = workspace_root();
    let baseline = load_baseline(&default_baseline_path(&root)).expect("baseline parses");
    let report = scan_workspace(&root, Some(baseline)).expect("workspace scan succeeds");
    assert!(
        report.files_scanned > 50,
        "sanity: scan found only {} files — wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.active.iter().map(|d| d.render_human()).collect();
    assert!(
        report.active.is_empty(),
        "adas-lint found {} new violation(s); fix them, add an inline \
         `// adas-lint: allow(<rule>, reason = \"…\")`, or (legacy code only) \
         re-run `cargo run -p adas-lint -- --write-baseline`:\n\n{}",
        report.active.len(),
        rendered.join("\n")
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = workspace_root();
    let baseline = load_baseline(&default_baseline_path(&root)).expect("baseline parses");
    let report = scan_workspace(&root, Some(baseline)).expect("workspace scan succeeds");
    assert!(
        report.unused_baseline.is_empty(),
        "stale baseline entries (the code they grandfathered is gone — \
         re-run `cargo run -p adas-lint -- --write-baseline`): {:?}",
        report.unused_baseline
    );
}

/// Injecting a raw-f64 public API into a safety-path crate must fail with R1.
#[test]
fn injected_raw_float_api_fails_r1() {
    let diags = scan_source(
        "crates/openadas/src/injected.rs",
        "/// Sets the cruise speed.\npub fn set_cruise_speed(&mut self, speed: f64) {}\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::UnitSafety && d.line == 2),
        "expected an R1 diagnostic at line 2, got: {diags:?}"
    );
}

/// Injecting an unwrap into non-test library code must fail with R2.
#[test]
fn injected_unwrap_fails_r2() {
    let diags = scan_source(
        "crates/openadas/src/injected.rs",
        "fn helper(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::PanicFreedom && d.line == 2),
        "expected an R2 diagnostic at line 2, got: {diags:?}"
    );
}

/// The same unwrap inside a `#[cfg(test)]` module is fine — tests may panic.
#[test]
fn unwrap_in_test_module_passes_r2() {
    let diags = scan_source(
        "crates/openadas/src/injected.rs",
        "#[cfg(test)]\nmod tests {\n    fn helper(v: Option<u8>) -> u8 {\n        v.unwrap()\n    }\n}\n",
    );
    assert!(
        diags.iter().all(|d| d.rule != Rule::PanicFreedom),
        "test-module code must be exempt from R2, got: {diags:?}"
    );
}

/// Writing an actuator command field outside the designated modules is R3.
#[test]
fn actuator_write_outside_safety_layer_fails_r3() {
    let diags = scan_source(
        "crates/openadas/src/injected.rs",
        "fn sneak(&mut self) {\n    self.control.accel_cmd = 9.0;\n}\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::ActuatorContainment && d.line == 2),
        "expected an R3 diagnostic at line 2, got: {diags:?}"
    );
    // The identical write inside the safety layer is contained — no finding.
    let allowed = scan_source(
        "crates/openadas/src/safety.rs",
        "fn clamp(&mut self) {\n    self.control.accel_cmd = 9.0;\n}\n",
    );
    assert!(allowed.iter().all(|d| d.rule != Rule::ActuatorContainment));
}

/// Float equality on the safety path is R4.
#[test]
fn float_equality_fails_r4() {
    let diags = scan_source(
        "crates/openadas/src/injected.rs",
        "fn same(a: f64, b: f64) -> bool {\n    a == 0.0 && b != 1.5\n}\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::FloatHygiene && d.line == 2),
        "expected an R4 diagnostic at line 2, got: {diags:?}"
    );
}

/// Wall-clock time on the safety path is R5 — simulations must be
/// tick-driven and reproducible.
#[test]
fn wall_clock_fails_r5() {
    let diags = scan_source(
        "crates/driving-sim/src/injected.rs",
        "fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::Determinism),
        "expected an R5 diagnostic, got: {diags:?}"
    );
}

/// An inline allow with a reason silences exactly its rule, nothing else.
#[test]
fn inline_allow_suppresses_only_named_rule() {
    let diags = scan_source(
        "crates/openadas/src/injected.rs",
        "// adas-lint: allow(R2, reason = \"bounded by construction\")\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
    );
    assert!(diags.iter().all(|d| d.rule != Rule::PanicFreedom));
    // The allow names R2; an R4 violation on the same line still fires.
    let diags = scan_source(
        "crates/openadas/src/injected.rs",
        "// adas-lint: allow(R2, reason = \"bounded\")\nfn f(a: f64) -> bool { a == 0.0 }\n",
    );
    assert!(diags.iter().any(|d| d.rule == Rule::FloatHygiene));
}
