//! Golden-fixture tests for the token-tree parser: the constructs most
//! likely to derail a hand-rolled Rust scanner, each pinned to the exact
//! facts the cross-file rules consume.

use adas_lint::parser::{self, Callee, FileFacts};
use adas_lint::tokenizer;

fn facts(src: &str) -> FileFacts {
    parser::parse(&tokenizer::tokenize(src))
}

/// Squeezes the space-joined token text back together for comparison.
fn squeeze(s: &str) -> String {
    s.replace(' ', "")
}

#[test]
fn nested_generics_are_not_shift_operators() {
    let f = facts(
        "pub fn deep(vv: Vec<Vec<f64>>) -> Vec<Vec<f64>> {\n    vv\n}\nfn shifted(a: u64) -> u64 {\n    a >> 2\n}\nfn after() -> u8 {\n    0\n}\n",
    );
    let names: Vec<&str> = f.fns.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(
        names,
        ["deep", "shifted", "after"],
        "a `>>` that closes two generics (or shifts) must not swallow the rest of the file"
    );
    assert_eq!(squeeze(&f.fns[0].ret), "Vec<Vec<f64>>");
    assert_eq!(f.fns[1].ret, "u64", "`a >> 2` is a shift, not a generic");
    assert!(f.fns[0].is_pub);
    assert!(!f.fns[1].is_pub);
}

#[test]
fn raw_strings_containing_fn_are_opaque() {
    let f = facts(
        "fn real() -> usize {\n    let s = r#\"fn fake() { x.unwrap() } panic!()\"#;\n    s.len()\n}\n",
    );
    assert_eq!(f.fns.len(), 1, "{:?}", f.fns);
    assert_eq!(f.fns[0].name, "real");
    assert!(
        f.fns[0].panics.is_empty(),
        "panics spelled inside a raw string are text, not code: {:?}",
        f.fns[0].panics
    );
}

#[test]
fn macro_invocations_and_panic_macros_are_split() {
    let f = facts(
        "fn report(a: u8) {\n    println!(\"a = {}\", a);\n    if a > 250 {\n        unreachable!(\"bounded by caller\");\n    }\n}\n",
    );
    let fd = &f.fns[0];
    assert!(
        fd.macros.iter().any(|(_, m)| m == "println"),
        "ordinary macros land in `macros`: {:?}",
        fd.macros
    );
    assert_eq!(fd.panics.len(), 1, "{:?}", fd.panics);
    assert_eq!(fd.panics[0].what, "unreachable!");
    assert_eq!(fd.panics[0].line, 4);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let f = facts("pub fn first<'a>(xs: &'a [f64]) -> &'a f64 {\n    &xs[0]\n}\n");
    assert_eq!(f.fns.len(), 1, "{:?}", f.fns);
    let fd = &f.fns[0];
    assert_eq!(fd.name, "first");
    assert!(fd.is_pub);
    assert!(
        squeeze(&fd.ret).contains("f64"),
        "return type survives the lifetime: {:?}",
        fd.ret
    );
}

#[test]
fn where_clauses_do_not_leak_into_the_body() {
    let f = facts(
        "pub fn dup<T>(t: T) -> Vec<T>\nwhere\n    T: Clone,\n{\n    let c = t.clone();\n    vec![t, c]\n}\n",
    );
    assert_eq!(f.fns.len(), 1, "{:?}", f.fns);
    let fd = &f.fns[0];
    assert_eq!(squeeze(&fd.ret), "Vec<T>", "ret stops at the where clause");
    assert!(
        fd.calls
            .iter()
            .any(|c| c.callee == Callee::Method("clone".into())),
        "body calls are still collected: {:?}",
        fd.calls
    );
}

#[test]
fn impl_methods_are_qualified() {
    let f = facts(
        "impl Harness {\n    pub fn step(&mut self) {\n        self.engine.observe();\n        helper();\n    }\n}\nfn helper() {}\n",
    );
    assert_eq!(f.fns[0].qual, "Harness::step");
    assert_eq!(f.fns[0].impl_type.as_deref(), Some("Harness"));
    assert_eq!(f.fns[1].qual, "helper");
    let callees: Vec<&str> = f.fns[0].calls.iter().map(|c| c.callee.name()).collect();
    assert_eq!(callees, ["observe", "helper"]);
}

#[test]
fn match_arms_carry_enum_heads_and_wildcards() {
    let f = facts(
        "fn act(t: AttackType) -> u8 {\n    match t {\n        AttackType::Acceleration => 1,\n        AttackType::Deceleration if hard() => 2,\n        _ => 0,\n    }\n}\n",
    );
    assert_eq!(f.matches.len(), 1, "{:?}", f.matches);
    let m = &f.matches[0];
    assert_eq!(m.scrutinee, "t");
    assert_eq!(m.arms.len(), 3);
    assert!(m.arms[0].enum_heads.contains(&"AttackType".to_string()));
    assert!(!m.arms[0].wildcard);
    assert!(
        !m.arms[1].wildcard,
        "a guarded variant arm is not a wildcard"
    );
    assert!(m.arms[2].wildcard, "{:?}", m.arms[2]);
}

#[test]
fn enums_and_structs_are_catalogued() {
    let f = facts(
        "pub enum AlertKind {\n    SteerSaturated,\n    ForwardCollisionWarning,\n}\npub struct Harness {\n    tick: u64,\n}\n",
    );
    assert_eq!(f.enums.len(), 1);
    assert_eq!(f.enums[0].name, "AlertKind");
    assert_eq!(
        f.enums[0].variants,
        ["SteerSaturated", "ForwardCollisionWarning"]
    );
    assert!(f.structs.contains(&"Harness".to_string()));
}
