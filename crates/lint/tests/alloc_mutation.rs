//! Mutation test for R13: the real `crates/platform/src/batch.rs` must
//! scan clean, and reintroducing a per-tick allocation into
//! `FastBatch::step` must produce exactly one R13 finding. This proves
//! the hot-path allocation analysis actually covers the batched tick —
//! a rule that stays silent when the regression it exists for comes back
//! is dead weight.

use std::path::Path;

use adas_lint::{scan_sources, Rule};

const BATCH_REL: &str = "crates/platform/src/batch.rs";

/// The line the mutation is inserted after — the opening of the batched
/// tick. If `FastBatch::step`'s signature changes, update this anchor.
const ANCHOR: &str = "    fn step(&mut self, tick: Tick) {";

fn read_real_batch() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(BATCH_REL);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn r13_findings(source: &str) -> Vec<adas_lint::Diagnostic> {
    let mut diags = scan_sources(&[(BATCH_REL, source)]);
    diags.retain(|d| d.rule == Rule::AllocFreedom);
    diags
}

#[test]
fn real_batch_step_is_allocation_free() {
    let source = read_real_batch();
    assert!(
        source.contains(ANCHOR),
        "mutation anchor vanished from {BATCH_REL} — update ANCHOR"
    );
    let diags = r13_findings(&source);
    assert!(
        diags.is_empty(),
        "the shipped batched tick must prove allocation-free, got: {:#?}",
        diags
            .iter()
            .map(|d| d.render_human())
            .collect::<Vec<_>>()
    );
}

#[test]
fn reintroduced_per_tick_vec_is_caught() {
    let source = read_real_batch();
    let anchor_at = source
        .find(ANCHOR)
        .unwrap_or_else(|| panic!("mutation anchor vanished from {BATCH_REL} — update ANCHOR"));
    // Reintroduce the pre-refactor shape: a scratch Vec built fresh
    // inside every batched tick.
    let mut mutated = String::with_capacity(source.len() + 64);
    mutated.push_str(&source[..anchor_at + ANCHOR.len()]);
    mutated.push_str("\n        let mut retire: Vec<usize> = Vec::new();\n        retire.clear();");
    mutated.push_str(&source[anchor_at + ANCHOR.len()..]);

    let diags = r13_findings(&mutated);
    assert_eq!(
        diags.len(),
        1,
        "exactly the injected Vec::new must fire, got: {:#?}",
        diags
            .iter()
            .map(|d| d.render_human())
            .collect::<Vec<_>>()
    );
    let d = &diags[0];
    assert!(d.message.contains("Vec::new"), "{}", d.message);
    assert!(
        d.message.contains("BatchHarness::step"),
        "chain must start at the batched root: {}",
        d.message
    );
    // The finding lands on the injected line, right after the anchor.
    let anchor_line = source[..anchor_at].lines().count() + 1;
    assert_eq!(d.line, anchor_line + 1, "{}", d.render_human());
}
