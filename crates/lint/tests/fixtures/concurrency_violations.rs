//! Seeded violations for the concurrency/allocation layer (R12/R13/R14).
//!
//! Scanned as `crates/platform/src/fixture.rs` so the concurrency scope
//! applies. Every finding is pinned by (rule, line) in
//! `concurrency_violations.expected`; drift in either direction fails the
//! `concurrency_fixtures` suite.

use std::sync::{Condvar, Mutex, PoisonError};

pub struct Harness {
    scratch: Vec<u64>,
}

impl Harness {
    /// R13 root: the steady-state tick must be allocation-free, yet this
    /// one stages a fresh buffer and grows a Vec every call.
    pub fn step(&mut self) {
        let staged: Vec<u64> = Vec::with_capacity(8);
        self.scratch.push(1);
        drop(staged);
    }
}

pub struct Job;

impl Job {
    pub fn wait(&self) {}
}

pub struct Pool {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gate: Mutex<bool>,
    cv: Condvar,
}

impl Pool {
    /// R12: takes `alpha` then `beta`, while `ba` takes them in the
    /// opposite order — a lock-order cycle.
    pub fn ab(&self) {
        let _a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        self.take_beta();
    }

    fn take_beta(&self) {
        let _b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
    }

    pub fn ba(&self) {
        let _b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        self.take_alpha();
    }

    fn take_alpha(&self) {
        let _a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
    }

    /// R12: the guard is consumed by `expect` and this file documents no
    /// poisoning policy.
    pub fn peek(&self) -> u32 {
        *self.alpha.lock().expect("alpha poisoned")
    }

    /// R12: waits without re-checking the predicate in a loop — wakeups
    /// are allowed to be spurious.
    pub fn await_gate(&self) {
        let g = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        let _g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }

    /// R12: a guard is still held across the pool boundary `Job::wait`,
    /// so every worker that needs the lock stalls behind this job.
    pub fn submit_and_wait(&self, job: &Job) {
        let _a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        job.wait();
    }

    /// R14: results merged in arrival order under the lock — the output
    /// depends on thread scheduling, not on lane index.
    pub fn merge(&self, out: &Mutex<Vec<u32>>, v: u32) {
        let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
        g.push(v);
    }
}

/// R14: unsynchronized shared mutable state.
pub static mut TICKS: u64 = 0;
