//! Seeded semantic-rule violations (R9/R10/R11) for the golden fixture
//! test. Scanned as `crates/openadas/src/fixture.rs` — the strictest
//! scope. Line numbers are load-bearing: `semantic_violations.expected`
//! pins (rule, line) pairs, so edits here must update it.

// ---- R10: threshold-consistency seeds -------------------------------

// Staleness is detected only AFTER the degradation ladder escalates —
// the ladder acts on data it never classified as stale.
pub const STALE_AFTER_TICKS: u32 = 40;
pub const DEGRADE_AFTER_TICKS: u32 = 30;
pub const FAILSAFE_AFTER_TICKS: u32 = 60;

// Envelope nesting broken: the "strict" ceiling exceeds the software one.
pub const STRICT_ACCEL_MAX_MPS2: f64 = 3.0;
pub const SW_ACCEL_MAX_MPS2: f64 = 2.4;
pub const PHYS_ACCEL_MAX_MPS2: f64 = 5.0;

// IDS thresholds, canonical…
pub const IDS_MISS_AFTER: u32 = 10;
pub const IDS_TIMING_THRESHOLD: u32 = 10;
pub const IDS_COUNTER_THRESHOLD: u32 = 5;
pub const IDS_CHECKSUM_THRESHOLD: u32 = 4;

pub struct IdsConfig {
    pub miss_after: u32,
    pub timing_threshold: u32,
    pub counter_threshold: u32,
    pub checksum_threshold: u32,
}

impl IdsConfig {
    // …but the runtime config drifts from IDS_TIMING_THRESHOLD.
    pub fn default() -> IdsConfig {
        IdsConfig {
            miss_after: IDS_MISS_AFTER,
            timing_threshold: 12,
            counter_threshold: IDS_COUNTER_THRESHOLD,
            checksum_threshold: IDS_CHECKSUM_THRESHOLD,
        }
    }
}

// ---- R9: envelope-soundness seeds -----------------------------------

// An unconstrained parameter reaches the encoder: nothing bounds it.
pub fn emit_raw(enc: &CommandEncoder, raw: f64) {
    enc.encode_into(&raw);
}

// Clamped, but to a range wider than the physical envelope — the
// interval chain in the diagnostic shows exactly where [-20, 10] came
// from and why it does not fit inside [-9.8, 5].
pub fn emit_wide(enc: &CommandEncoder, raw: f64) {
    let v = raw.clamp(-20.0, 10.0);
    enc.encode_into(&v);
}

// ---- R11: clamp-hygiene seeds ---------------------------------------

// A clamp does not launder NaN: 0/0 sails straight through to the bus.
pub fn emit_nan(enc: &CommandEncoder, x: f64, y: f64) {
    let v = (x / y).clamp(-4.0, 2.0);
    enc.encode_into(&v);
}

// Inverted bounds: f64::clamp panics at runtime on this pair.
pub fn inverted(x: f64) -> f64 {
    x.clamp(5.0, -5.0)
}

// The second clamp is dead: its receiver is already proven inside.
pub fn shadowed(x: f64) -> f64 {
    let narrow = x.clamp(0.0, 1.0);
    narrow.clamp(-5.0, 5.0)
}
