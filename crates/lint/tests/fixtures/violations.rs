//! Golden fixture: deliberately violating code, scanned as if it lived at
//! `crates/openadas/src/fixture.rs`. Expected findings (rule + 1-based
//! line) live in `violations.expected`; the `fixtures` integration test
//! compares them exactly. This file is never compiled — the `fixtures`
//! directory is excluded from both the cargo build and the workspace scan.

// R1: raw f64 crossing a public API boundary of a safety-path crate.
pub fn set_target_speed(&mut self, speed: f64) {
    self.target = speed;
}

// R2: unwrap in non-test library code.
fn first_frame(frames: &[u8]) -> u8 {
    frames.first().copied().unwrap()
}

// R2: indexing with a computed subscript.
fn nth_frame(frames: &[u8], i: usize) -> u8 {
    frames[i]
}

// R3: actuator command write outside the safety/controls modules.
fn hijack(&mut self) {
    self.cmd.steer_cmd = 400.0;
}

// R4: strict float equality on the safety path.
fn is_stopped(v: f64) -> bool {
    v == 0.0
}

// R5: wall-clock time instead of the simulation tick.
fn stamp() -> u128 {
    std::time::SystemTime::now().elapsed().unwrap().as_millis()
}

// Suppressed: the allow comment acknowledges the unwrap with a reason.
fn acknowledged(v: Option<u8>) -> u8 {
    // adas-lint: allow(R2, reason = "fixture demonstrates suppression")
    v.unwrap()
}

#[cfg(test)]
mod tests {
    // Exempt: test code may panic freely.
    fn in_tests(v: Option<u8>) -> u8 {
        v.unwrap()
    }
}
