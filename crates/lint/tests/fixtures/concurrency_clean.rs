//! Clean concurrency fixture: ordered lock nesting, a predicate-loop
//! wait, index-addressed merges, and an allocation-free steady-state
//! tick. The analyzer must discharge every obligation here — a single
//! finding on this file is a false positive.
//!
//! lock poisoning policy: guards recover with
//! `unwrap_or_else(PoisonError::into_inner)`; the shared state is
//! repaired before reuse, so a panicked worker never wedges its peers.

use std::sync::{Condvar, Mutex, PoisonError};

pub struct Harness {
    scratch: [u64; 8],
    cursor: usize,
}

impl Harness {
    /// The steady-state tick writes in place — nothing allocates.
    pub fn step(&mut self) {
        self.scratch[self.cursor % 8] = self.cursor as u64;
        self.cursor += 1;
    }
}

pub struct Pool {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gate: Mutex<bool>,
    cv: Condvar,
}

impl Pool {
    /// Locks nest in one global order: `alpha`, then `beta`.
    pub fn ordered(&self) {
        let _a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        let _b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
    }

    /// The wait re-checks its predicate in a loop, so spurious wakeups
    /// and stolen wakeups are both harmless.
    pub fn await_gate(&self) {
        let mut g = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Results land by lane index into pre-sized slots — completion
    /// order cannot show in the output.
    pub fn merge(&self, out: &Mutex<Vec<Option<u32>>>, lane: usize, v: u32) {
        let mut g = out.lock().unwrap_or_else(PoisonError::into_inner);
        g[lane] = Some(v);
    }
}
