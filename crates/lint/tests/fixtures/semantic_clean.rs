//! The prover's positive side: every flow here is provable, so the
//! semantic rules (R9/R10/R11) must report nothing. Each function
//! exercises one proof technique the analyzer relies on in the real
//! workspace.

pub const PHYS_BRAKE_MIN_MPS2: f64 = -9.8;
pub const PHYS_ACCEL_MAX_MPS2: f64 = 5.0;
pub const PHYS_STEER_MAX_DEG: f64 = 5.0;
pub const SW_BRAKE_MIN_MPS2: f64 = -4.0;
pub const SW_ACCEL_MAX_MPS2: f64 = 2.4;

pub struct CarControl {
    pub accel: f64,
    pub steer: f64,
}

// Terminal clamp through a free function — the shape of
// `safety::envelope_clamp`, resolved and inlined by the analyzer.
fn envelope_clamp(c: CarControl) -> CarControl {
    CarControl {
        accel: c.accel.clamp(SW_BRAKE_MIN_MPS2, SW_ACCEL_MAX_MPS2),
        steer: c.steer.clamp(-0.05, 0.05),
    }
}

pub fn emit_struct(enc: &CommandEncoder, c: CarControl) {
    let c = envelope_clamp(c);
    enc.encode_into(&c);
}

// min/max launder NaN: the clean operands both clear the flag and
// bound the range, so 0/0 upstream is provably harmless here.
pub fn emit_laundered(enc: &CommandEncoder, x: f64, y: f64) {
    let v = (x / y).min(2.0).max(-4.0);
    enc.encode_into(&v);
}

// Guard refinement: the positive ordered comparison both narrows the
// interval and rules NaN out on the taken branch.
pub fn emit_guarded(enc: &CommandEncoder, x: f64) {
    if x > 0.0 && x < 2.0 {
        enc.encode_into(&x);
    }
}

// A clamp that genuinely narrows is not dead, even when a wider one
// follows a *different* value.
pub fn distinct_clamps(x: f64, y: f64) -> f64 {
    let a = x.clamp(0.0, 1.0);
    let b = y.clamp(-5.0, 5.0);
    a + b
}
