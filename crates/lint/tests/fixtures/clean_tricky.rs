//! Golden fixture: every violation-looking token here is inside a comment,
//! string, raw string, char literal, or test module — a correct scan finds
//! NOTHING. Each construct is a regression trap for the masking tokenizer.
//! Like its sibling, this file is scanned as `crates/openadas/src/fixture.rs`
//! and never compiled.

// A doc comment mentioning .unwrap() and panic!("boom") must not fire R2.

/// Returns the label. Comparing `a == 0.0` here is prose, not code (R4 trap);
/// so is `std::time::Instant::now()` (R5 trap) and `self.steer_cmd = 1.0`
/// (R3 trap) and `pub fn speed(v: f64)` (R1 trap).
fn label() -> &'static str {
    "call .unwrap() or panic!(\"boom\") — it's fine inside a string"
}

fn raw_multiline() -> &'static str {
    r#"first line
    frames[i] and .expect("x") and a == 0.0 and thread_rng()
    last line"#
}

fn raw_with_hashes() -> &'static str {
    r##"contains "# inside, plus self.accel_cmd = 9.0 and SystemTime"##
}

fn byte_string() -> &'static [u8] {
    b".unwrap() as bytes, x != 1.5 too"
}

/* Block comment with std::time::SystemTime and .unwrap()
   spanning /* a nested block */ multiple lines with frames[i]. */
fn after_block() -> u8 {
    0
}

fn char_literals() -> (char, char, char) {
    // The quote and backslash literals must not open a string that would
    // swallow the rest of the file.
    ('"', '\'', '\\')
}

fn lifetime_not_char(s: &'static str) -> &'static str {
    // `'static` is a lifetime, not an unterminated char literal.
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let x = [1u8, 2];
        assert_eq!(x[0], 1);
    }
}
