//! Golden-fixture tests: known-violating and known-clean sources with
//! checked-in expectations. The fixtures live under `tests/fixtures/`,
//! which the workspace scanner skips, so they never pollute a real scan.

use std::path::Path;

use adas_lint::scan_source;

/// The fixture files are scanned as if they lived inside openadas — the
/// strictest scope (all five rules apply).
const FIXTURE_SCAN_PATH: &str = "crates/openadas/src/fixture.rs";

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

#[test]
fn violating_fixture_matches_expected_findings() {
    let source = read_fixture("violations.rs");
    let expected: Vec<(String, usize)> = read_fixture("violations.expected")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let rule = parts.next().expect("rule id").to_owned();
            let line = parts
                .next()
                .expect("line number")
                .parse()
                .expect("line number parses");
            (rule, line)
        })
        .collect();

    let mut actual: Vec<(String, usize)> = scan_source(FIXTURE_SCAN_PATH, &source)
        .into_iter()
        .map(|d| (d.rule.id().to_owned(), d.line))
        .collect();
    actual.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));

    let mut expected_sorted = expected;
    expected_sorted.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));

    assert_eq!(
        actual, expected_sorted,
        "fixture findings drifted from violations.expected — if the rule \
         change is intentional, update the .expected file"
    );
}

#[test]
fn tricky_clean_fixture_produces_no_findings() {
    let source = read_fixture("clean_tricky.rs");
    let diags = scan_source(FIXTURE_SCAN_PATH, &source);
    assert!(
        diags.is_empty(),
        "masked content leaked into the code view: {diags:#?}"
    );
}
