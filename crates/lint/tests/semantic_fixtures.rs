//! Golden fixtures for the semantic layer (R9/R10/R11): a seeded
//! violation file whose (rule, line) findings are pinned in
//! `semantic_violations.expected`, and a clean file proving the analyzer
//! can actually discharge every obligation it is asked to. Lexical
//! findings (R1–R8) on the same sources are out of scope here — the
//! `fixtures.rs` suite owns those — so the assertions filter to the
//! semantic rules.

use std::path::Path;

use adas_lint::{sarif, scan_sources, Diagnostic, Rule};

const FIXTURE_SCAN_PATH: &str = "crates/openadas/src/fixture.rs";

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn semantic_findings(source: &str) -> Vec<Diagnostic> {
    let mut diags = scan_sources(&[(FIXTURE_SCAN_PATH, source)]);
    diags.retain(|d| {
        matches!(
            d.rule,
            Rule::EnvelopeSoundness | Rule::ThresholdConsistency | Rule::ClampHygiene
        )
    });
    diags
}

#[test]
fn violating_fixture_matches_expected_findings() {
    let source = read_fixture("semantic_violations.rs");
    let expected: Vec<(String, usize)> = read_fixture("semantic_violations.expected")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let rule = parts.next().expect("rule id").to_owned();
            let line = parts
                .next()
                .expect("line number")
                .parse()
                .expect("line number parses");
            (rule, line)
        })
        .collect();

    let mut actual: Vec<(String, usize)> = semantic_findings(&source)
        .into_iter()
        .map(|d| (d.rule.id().to_owned(), d.line))
        .collect();
    actual.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));

    let mut expected_sorted = expected;
    expected_sorted.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));

    assert_eq!(
        actual, expected_sorted,
        "semantic fixture findings drifted from semantic_violations.expected \
         — if the rule change is intentional, update the .expected file"
    );
}

#[test]
fn wide_clamp_diagnostic_carries_the_interval_chain() {
    let source = read_fixture("semantic_violations.rs");
    let diags = semantic_findings(&source);
    let wide = diags
        .iter()
        .find(|d| d.rule == Rule::EnvelopeSoundness && d.message.contains("[-20, 10]"))
        .unwrap_or_else(|| panic!("no R9 finding for the wide clamp: {diags:?}"));
    // The human-readable message walks the interval chain: where the
    // value was clamped, what interval resulted, and which physical
    // limits it fails to fit inside.
    assert!(wide.message.contains("clamp@"), "{}", wide.message);
    assert!(wide.message.contains("[-9.8, 5]"), "{}", wide.message);
    let human = wide.render_human();
    assert!(human.contains("R9"), "{human}");
    assert!(human.contains(FIXTURE_SCAN_PATH), "{human}");
}

#[test]
fn semantic_findings_render_to_valid_sarif() {
    let source = read_fixture("semantic_violations.rs");
    let diags = semantic_findings(&source);
    assert!(!diags.is_empty());
    let doc = sarif::emit(&diags);
    sarif::validate(&doc).expect("semantic findings must emit valid SARIF");
    for rule in ["R9", "R10", "R11"] {
        assert!(
            doc.contains(&format!("\"ruleId\": \"{rule}\""))
                || doc.contains(&format!("\"ruleId\":\"{rule}\"")),
            "SARIF document lost {rule} results"
        );
    }
    // The interval chain survives into the SARIF message text.
    assert!(doc.contains("clamp@"), "interval chain missing from SARIF");
}

#[test]
fn clean_fixture_discharges_every_obligation() {
    let source = read_fixture("semantic_clean.rs");
    let diags = semantic_findings(&source);
    assert!(
        diags.is_empty(),
        "the clean semantic fixture must prove out, got: {:#?}",
        diags
            .iter()
            .map(|d| d.render_human())
            .collect::<Vec<_>>()
    );
}
