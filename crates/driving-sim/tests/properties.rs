//! Property-based tests on the simulator's physical invariants.

use driving_sim::{ActuatorCommand, Scenario, ScenarioId, World};
use proptest::prelude::*;
use units::{Accel, Angle, Distance};

fn any_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::sample::select(ScenarioId::ALL.to_vec()),
        prop::sample::select(vec![50.0, 70.0, 100.0]),
    )
        .prop_map(|(id, gap)| Scenario::new(id, Distance::meters(gap)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary (bounded) command sequences never break the world:
    /// no NaNs, no negative speeds, collisions latch exactly once.
    #[test]
    fn world_invariants_under_arbitrary_commands(
        scenario in any_scenario(),
        seed in 0u64..10_000,
        cmds in proptest::collection::vec((-10.0..5.0f64, -1.0..1.0f64), 50..400),
    ) {
        let mut world = World::new(scenario, seed);
        let mut first_collision = None;
        for (i, (a, s)) in cmds.iter().enumerate() {
            world.step(ActuatorCommand {
                accel: Accel::from_mps2(*a),
                steer: Angle::from_degrees(*s),
            });
            let ego = world.ego();
            prop_assert!(ego.speed().mps() >= 0.0);
            prop_assert!(ego.speed().is_finite());
            prop_assert!(ego.d().is_finite());
            prop_assert!(ego.s().is_finite());
            if let Some((t, k)) = world.collision() {
                match first_collision {
                    None => first_collision = Some((t, k, i)),
                    Some((t0, k0, _)) => {
                        prop_assert_eq!(t0, t, "collision latches");
                        prop_assert_eq!(k0, k);
                    }
                }
            }
        }
    }

    /// The world is a pure function of (scenario, seed, command sequence).
    #[test]
    fn world_is_deterministic(
        scenario in any_scenario(),
        seed in 0u64..10_000,
        cmds in proptest::collection::vec(-3.0..2.0f64, 10..150),
    ) {
        let run = || {
            let mut w = World::new(scenario, seed);
            for a in &cmds {
                w.step(ActuatorCommand {
                    accel: Accel::from_mps2(*a),
                    steer: Angle::ZERO,
                });
            }
            (
                w.ego().s().raw(),
                w.ego().d().raw(),
                w.ego().speed().mps(),
                w.lane_invasions(),
                w.collision(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Lane-invasion count is monotone and the gap shrinks no faster than
    /// the closing speed allows.
    #[test]
    fn bookkeeping_is_monotone(scenario in any_scenario(), seed in 0u64..1_000) {
        let mut world = World::new(scenario, seed);
        let mut last_invasions = 0;
        let mut last_gap = world.gap().raw();
        for _ in 0..500 {
            world.step(ActuatorCommand::default());
            prop_assert!(world.lane_invasions() >= last_invasions);
            last_invasions = world.lane_invasions();
            let gap = world.gap().raw();
            // One tick at <= 45 m/s closing cannot move the gap by > 0.5 m.
            prop_assert!((gap - last_gap).abs() < 0.5);
            last_gap = gap;
        }
    }
}
