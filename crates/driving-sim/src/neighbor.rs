//! Traffic in the left neighbour lane.
//!
//! The paper's CARLA scenes contain "other reference vehicles" (Fig. 6a),
//! and its accident class A3 explicitly includes "collision with … other
//! vehicles in the neighboring lane". A steady convoy in the left lane makes
//! leftward lane departures dangerous the same way: an ego that blunders
//! across the left line at speed has a good chance of clipping a convoy
//! member, while a slow, shallow incursion usually slots into a gap.

use serde::{Deserialize, Serialize};
use units::{Distance, Seconds, Speed};

/// An infinite, evenly-spaced convoy cruising in the left neighbour lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborTraffic {
    /// Lateral position of the convoy's lane centre.
    pub lane_center: Distance,
    /// Bumper-to-bumper spacing between consecutive members.
    pub spacing: Distance,
    /// Convoy speed.
    pub speed: Speed,
    /// Longitudinal phase of the convoy pattern at `t = 0`.
    pub phase: Distance,
    /// Member vehicle length.
    pub length: Distance,
    /// Member vehicle width.
    pub width: Distance,
}

impl NeighborTraffic {
    /// The paper-like default: 40 mph convoy every 45 m in the left lane,
    /// with a per-run phase derived from the seed.
    pub fn standard(seed: u64) -> Self {
        Self {
            lane_center: Distance::meters(3.7),
            spacing: Distance::meters(45.0),
            speed: Speed::from_mph(40.0),
            phase: Distance::meters((seed % 45) as f64),
            length: Distance::meters(4.7),
            width: Distance::meters(1.82),
        }
    }

    /// Longitudinal position of the convoy member nearest to `s` at time `t`.
    pub fn nearest_member(&self, t: Seconds, s: Distance) -> Distance {
        let travelled = self.phase.raw() + self.speed.mps() * t.secs();
        let rel = s.raw() - travelled;
        let k = (rel / self.spacing.raw()).round();
        Distance::meters(travelled + k * self.spacing.raw())
    }

    /// Longitudinal position of the nearest convoy member strictly ahead of
    /// `s` at time `t`.
    pub fn member_ahead(&self, t: Seconds, s: Distance) -> Distance {
        let nearest = self.nearest_member(t, s);
        if nearest > s {
            nearest
        } else {
            nearest + self.spacing
        }
    }

    /// Whether a car at `(s, d)` with the given footprint overlaps a convoy
    /// member at time `t`.
    pub fn collides(
        &self,
        t: Seconds,
        s: Distance,
        d: Distance,
        car_length: Distance,
        car_width: Distance,
    ) -> bool {
        let lateral = (d - self.lane_center).abs() < (car_width + self.width) / 2.0;
        if !lateral {
            return false;
        }
        let member = self.nearest_member(t, s);
        (member - s).abs() < (car_length + self.length) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic() -> NeighborTraffic {
        NeighborTraffic::standard(0)
    }

    #[test]
    fn nearest_member_is_within_half_spacing() {
        let t = traffic();
        for s in [0.0, 10.0, 44.9, 100.0, 1234.5] {
            let m = t.nearest_member(Seconds::new(3.0), Distance::meters(s));
            assert!((m.raw() - s).abs() <= 22.5 + 1e-9, "s={s} m={m}");
        }
    }

    #[test]
    fn convoy_moves_forward() {
        let t = traffic();
        let a = t.nearest_member(Seconds::new(0.0), Distance::ZERO);
        let b = t.nearest_member(Seconds::new(1.0), Distance::ZERO);
        // The member pattern shifted by v*dt (modulo spacing).
        let v = t.speed.mps();
        let shift = (b.raw() - a.raw() - v).rem_euclid(t.spacing.raw());
        assert!(shift.abs() < 1e-9 || (shift - t.spacing.raw()).abs() < 1e-9);
    }

    #[test]
    fn no_collision_from_own_lane() {
        let t = traffic();
        // Ego centred in its own lane never overlaps laterally.
        for s in 0..100 {
            assert!(!t.collides(
                Seconds::new(s as f64 * 0.5),
                Distance::meters(s as f64 * 3.0),
                Distance::ZERO,
                Distance::meters(4.7),
                Distance::meters(1.82),
            ));
        }
    }

    #[test]
    fn collision_requires_both_overlaps() {
        let t = traffic();
        let member = t.nearest_member(Seconds::new(0.0), Distance::ZERO);
        // In the neighbour lane, longitudinally aligned with a member: hit.
        assert!(t.collides(
            Seconds::new(0.0),
            member,
            Distance::meters(3.7),
            Distance::meters(4.7),
            Distance::meters(1.82),
        ));
        // Longitudinally between members: no hit.
        let gap_centre = member + Distance::meters(22.5);
        assert!(!t.collides(
            Seconds::new(0.0),
            gap_centre,
            Distance::meters(3.7),
            Distance::meters(4.7),
            Distance::meters(1.82),
        ));
    }

    #[test]
    fn phase_depends_on_seed() {
        let a = NeighborTraffic::standard(1);
        let b = NeighborTraffic::standard(20);
        assert_ne!(a.phase, b.phase);
    }
}
