//! Road geometry in road-aligned (Frenet) coordinates.
//!
//! Longitudinal position `s` runs along the lane centreline; lateral position
//! `d` is the signed offset from the centre of the ego lane, positive to the
//! left. The paper's track is a gentle left-curved highway segment with a
//! guardrail close to the right of the ego lane and a neighbouring lane (plus
//! a farther guardrail) on the left.

use serde::{Deserialize, Serialize};
use units::Distance;

/// Static road description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    lane_width: Distance,
    /// Piecewise-constant curvature profile: `(start_s_m, kappa_per_m)`,
    /// sorted by start. Positive curvature turns left.
    curvature_profile: Vec<(f64, f64)>,
    right_guardrail: Distance,
    left_guardrail: Distance,
}

impl Default for Road {
    /// The paper's track: 3.7 m lanes on a gentle left curve (R = 2.5 km).
    /// The ego
    /// travels in the rightmost lane with a guardrail only 0.75 m beyond its
    /// right line; two more lanes extend to the left before the median
    /// guardrail. The asymmetry is the root of the paper's Observation 5
    /// detail: rightward departures hit something almost immediately,
    /// leftward ones cross survivable lanes first.
    fn default() -> Self {
        Self {
            lane_width: Distance::meters(3.7),
            curvature_profile: vec![(0.0, 1.0 / 2500.0)],
            right_guardrail: Distance::meters(-(3.7 / 2.0 + 0.75)),
            left_guardrail: Distance::meters(3.7 / 2.0 + 2.0 * 3.7 + 0.75),
        }
    }
}

impl Road {
    /// Creates a road with an explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics if the curvature profile is empty or does not start at `s = 0`.
    // adas-lint: allow(R1, reason = "curvature profile entries are (s in m, kappa in 1/m); units:: has no curvature newtype")
    pub fn new(
        lane_width: Distance,
        curvature_profile: Vec<(f64, f64)>,
        right_guardrail: Distance,
        left_guardrail: Distance,
    ) -> Self {
        assert!(
            curvature_profile.first().is_some_and(|(s, _)| s.abs() < 1e-9),
            "curvature profile must start at s = 0"
        );
        Self {
            lane_width,
            curvature_profile,
            right_guardrail,
            left_guardrail,
        }
    }

    /// A perfectly straight variant, useful in tests.
    pub fn straight() -> Self {
        Self {
            curvature_profile: vec![(0.0, 0.0)],
            ..Self::default()
        }
    }

    /// Lane width.
    pub fn lane_width(&self) -> Distance {
        self.lane_width
    }

    /// Road curvature at longitudinal position `s` (1/m, positive = left).
    // adas-lint: allow(R1, reason = "curvature in 1/m (positive = left); units:: has no curvature newtype")
    pub fn curvature(&self, s: Distance) -> f64 {
        let s = s.raw();
        self.curvature_profile
            .iter()
            .rev()
            .find(|(start, _)| s >= *start)
            .map_or(0.0, |(_, k)| *k)
    }

    /// Lateral position of the ego lane's left line.
    pub fn left_line(&self) -> Distance {
        self.lane_width / 2.0
    }

    /// Lateral position of the ego lane's right line.
    pub fn right_line(&self) -> Distance {
        -(self.lane_width / 2.0)
    }

    /// Lateral position of the right guardrail (negative: right of centre).
    pub fn right_guardrail(&self) -> Distance {
        self.right_guardrail
    }

    /// Lateral position of the left guardrail (beyond the neighbour lane).
    pub fn left_guardrail(&self) -> Distance {
        self.left_guardrail
    }

    /// Distance from a car edge position to the nearest guardrail; negative
    /// when the edge has penetrated the rail.
    pub fn guardrail_clearance(&self, left_edge: Distance, right_edge: Distance) -> Distance {
        let left_clear = self.left_guardrail - left_edge;
        let right_clear = right_edge - self.right_guardrail;
        left_clear.min(right_clear)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_track() {
        let road = Road::default();
        assert_eq!(road.lane_width(), Distance::meters(3.7));
        assert!(road.curvature(Distance::meters(500.0)) > 0.0, "left curve");
        // The right rail is much closer than the left one.
        assert!(road.right_guardrail().raw().abs() < road.left_guardrail().raw());
    }

    #[test]
    fn lane_lines_are_symmetric() {
        let road = Road::default();
        assert_eq!(road.left_line(), -road.right_line());
        assert_eq!(road.left_line(), Distance::meters(1.85));
    }

    #[test]
    fn piecewise_curvature_lookup() {
        let road = Road::new(
            Distance::meters(3.7),
            vec![(0.0, 0.0), (100.0, 0.002), (300.0, -0.001)],
            Distance::meters(-2.6),
            Distance::meters(6.3),
        );
        assert_eq!(road.curvature(Distance::meters(50.0)), 0.0);
        assert_eq!(road.curvature(Distance::meters(100.0)), 0.002);
        assert_eq!(road.curvature(Distance::meters(299.0)), 0.002);
        assert_eq!(road.curvature(Distance::meters(1e6)), -0.001);
    }

    #[test]
    #[should_panic(expected = "curvature profile must start at s = 0")]
    fn profile_must_start_at_zero() {
        let _ = Road::new(
            Distance::meters(3.7),
            vec![(10.0, 0.0)],
            Distance::meters(-2.6),
            Distance::meters(6.3),
        );
    }

    #[test]
    fn guardrail_clearance_signs() {
        let road = Road::default();
        // Car centred in lane, 1.82 m wide.
        let clear = road.guardrail_clearance(Distance::meters(0.91), Distance::meters(-0.91));
        assert!(clear.raw() > 0.0);
        // Car pushed far right: right edge beyond the rail.
        let clear = road.guardrail_clearance(Distance::meters(-1.8), Distance::meters(-3.0));
        assert!(clear.raw() < 0.0);
    }
}
