//! Seeded stochastic processes for the sensor models.

use rand::rngs::StdRng;
use rand::Rng;

/// A discrete Ornstein–Uhlenbeck process: mean-reverting coloured noise.
///
/// White Gaussian noise alone would average out over the ADAS's filters; the
/// slowly-wandering component is what makes the lane-perception estimate
/// drift the way a camera model's does, producing the lane wander (and the
/// occasional attack-free lane invasion) that the paper reports in Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct OrnsteinUhlenbeck {
    theta: f64,
    sigma: f64,
    dt: f64,
    x: f64,
}

impl OrnsteinUhlenbeck {
    /// Creates a process with mean-reversion rate `theta` (1/s), noise scale
    /// `sigma` and step `dt` seconds, starting at zero.
    // adas-lint: allow(R1, reason = "OU parameters: theta is 1/s, sigma is process-specific noise scale, dt is a plain step width — no units:: newtype fits")
    pub fn new(theta: f64, sigma: f64, dt: f64) -> Self {
        Self {
            theta,
            sigma,
            dt,
            x: 0.0,
        }
    }

    /// Current value.
    // adas-lint: allow(R1, reason = "noise sample in the consuming sensor's unit; the process is unit-generic")
    pub fn value(&self) -> f64 {
        self.x
    }

    /// Advances one step and returns the new value.
    // adas-lint: allow(R1, reason = "noise sample in the consuming sensor's unit; the process is unit-generic")
    pub fn step(&mut self, rng: &mut StdRng) -> f64 {
        let gauss = gaussian(rng);
        self.x += -self.theta * self.x * self.dt + self.sigma * self.dt.sqrt() * gauss;
        self.x
    }
}

/// A standard-normal sample via Box–Muller (keeps us off rand_distr).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn ou_is_mean_reverting() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ou = OrnsteinUhlenbeck::new(0.5, 0.2, 0.01);
        let mut acc = 0.0;
        let mut max_abs: f64 = 0.0;
        for _ in 0..50_000 {
            let v = ou.step(&mut rng);
            acc += v;
            max_abs = max_abs.max(v.abs());
        }
        let mean = acc / 50_000.0;
        assert!(mean.abs() < 0.05, "long-run mean near zero, got {mean}");
        // Stationary std = sigma / sqrt(2 theta) = 0.2, so excursions stay bounded.
        assert!(max_abs < 1.5, "max excursion {max_abs}");
    }

    #[test]
    fn ou_is_deterministic_under_seed() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ou = OrnsteinUhlenbeck::new(1.0, 0.1, 0.01);
            (0..100).map(|_| ou.step(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
