//! A control-level urban driving simulator — the CARLA substitute of this
//! reproduction.
//!
//! The paper evaluates its attacks inside CARLA, but everything the attack
//! and the ADAS observe is *control-level* state: ego speed, lane-line
//! positions, the gap and relative speed to a lead vehicle. This crate
//! simulates exactly that state:
//!
//! * [`Road`] — lane geometry in road-aligned (Frenet) coordinates with a
//!   gentle left curve and guardrails, matching the paper's track (the ego
//!   "travels on a left-curved road" initialised "closer to the right
//!   guardrail", which is why Steering-Right attacks out-perform
//!   Steering-Left ones);
//! * [`Vehicle`] — a kinematic bicycle model with first-order actuator lag;
//! * [`LeadBehavior`]/[`Scenario`] — the paper's driving scenarios S1–S4 at
//!   initial gaps of 50/70/100 m;
//! * [`SensorSuite`] — GPS / radar / lane-perception models with seeded
//!   noise, publishing Cereal-style messages onto a [`msgbus::Bus`];
//! * [`World`] — the lock-step simulation (10 ms per tick), plus collision
//!   and lane-invasion detection.
//!
//! # Examples
//!
//! ```
//! use driving_sim::{Scenario, ScenarioId, World, ActuatorCommand};
//! use units::{Accel, Angle, Distance};
//!
//! // Lead cruising at 35 mph, 70 m ahead (scenario S1).
//! let scenario = Scenario::new(ScenarioId::S1, Distance::meters(70.0));
//! let mut world = World::new(scenario, 42);
//!
//! // Coast for one second.
//! for _ in 0..100 {
//!     world.step(ActuatorCommand { accel: Accel::ZERO, steer: Angle::ZERO });
//! }
//! assert!(world.ego().speed().mph() > 50.0);
//! assert!(world.gap().raw() < 70.0, "ego is faster, so the gap closes");
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

pub mod batch;
mod collision;
mod lead;
mod neighbor;
mod noise;
mod road;
mod scenario;
mod sensors;
mod vehicle;
mod world;

pub use collision::{CollisionKind, LaneInvasionTracker};
pub use lead::{LeadBehavior, LeadVehicle};
pub use neighbor::NeighborTraffic;
pub use noise::OrnsteinUhlenbeck;
pub use road::Road;
pub use scenario::{Scenario, ScenarioId, INITIAL_GAPS};
pub use sensors::{SensorFrame, SensorSuite, RADAR_RANGE};
pub use vehicle::{ActuatorCommand, Vehicle, VehicleParams};
pub use world::World;
