//! The lock-step simulation world.

use rand::rngs::StdRng;
use rand::SeedableRng;
use units::{Distance, SimClock, Tick, DT};

use crate::{
    ActuatorCommand, CollisionKind, LaneInvasionTracker, LeadVehicle, NeighborTraffic,
    OrnsteinUhlenbeck, Road, Scenario, Vehicle, VehicleParams,
};

/// The complete simulated world: road, ego vehicle, lead vehicle, clock and
/// event trackers. Advanced one 10 ms tick at a time by [`World::step`].
///
/// Besides the vehicles, the world applies a seeded lateral disturbance to
/// the ego (crosswind, road crown, surface irregularities). The ALC fights
/// it with soft gains, which produces the lane wander — and the occasional
/// attack-free lane invasion — that the paper reports (Fig. 7,
/// Observation 1).
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    road: Road,
    ego: Vehicle,
    lead: LeadVehicle,
    clock: SimClock,
    scenario: Scenario,
    invasions: LaneInvasionTracker,
    collision: Option<(Tick, CollisionKind)>,
    /// Lateral disturbance velocity process (m/s).
    disturbance: OrnsteinUhlenbeck,
    /// Convoy in the left neighbour lane.
    neighbors: NeighborTraffic,
    rng: StdRng,
    /// Seed identifying this run (recorded for reproducibility).
    seed: u64,
}

impl World {
    /// Creates the world for a scenario. The `seed` only identifies the run
    /// here; stochastic behaviour lives in the sensor suite, which should be
    /// constructed from the same seed.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        let road = Road::default();
        let ego = Vehicle::new(
            VehicleParams::default(),
            Distance::ZERO,
            scenario.initial_lateral_offset,
            scenario.cruise_speed,
        );
        let lead = LeadVehicle::new_seeded(scenario.id.lead_behavior(), scenario.initial_gap, seed);
        Self {
            road,
            ego,
            lead,
            clock: SimClock::new(),
            scenario,
            invasions: LaneInvasionTracker::new(),
            collision: None,
            // Stationary std ~0.40 m/s of lateral drift velocity with a ~3 s
            // correlation time.
            disturbance: OrnsteinUhlenbeck::new(0.33, 0.38, DT.secs()),
            neighbors: NeighborTraffic::standard(seed),
            rng: StdRng::seed_from_u64(seed ^ 0xD157u64),
            seed,
        }
    }

    /// The road geometry.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// The ego vehicle.
    pub fn ego(&self) -> &Vehicle {
        &self.ego
    }

    /// The lead vehicle.
    pub fn lead(&self) -> &LeadVehicle {
        &self.lead
    }

    /// The scenario this world runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The current tick.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Longitudinal gap from the ego front bumper to the lead rear bumper.
    pub fn gap(&self) -> Distance {
        self.lead.s() - self.ego.s()
    }

    /// Relative speed, ego minus lead (positive = closing); the paper's `RS`.
    pub fn relative_speed(&self) -> units::Speed {
        self.ego.speed() - self.lead.speed()
    }

    /// The neighbour-lane convoy.
    pub fn neighbors(&self) -> &NeighborTraffic {
        &self.neighbors
    }

    /// The collision, if one has occurred, with the tick it happened at.
    pub fn collision(&self) -> Option<(Tick, CollisionKind)> {
        self.collision
    }

    /// Total lane-invasion events so far.
    pub fn lane_invasions(&self) -> u64 {
        self.invasions.events()
    }

    /// Whether the car is currently touching/over a lane line.
    pub fn is_invading_lane(&self) -> bool {
        self.invasions.is_invading()
    }

    /// Whether the standard 50 s run has completed.
    pub fn finished(&self) -> bool {
        self.clock.finished()
    }

    /// Advances the world by one control cycle under the given actuator
    /// command. After a collision the world freezes (vehicles stop moving),
    /// matching how the paper terminates accident runs.
    ///
    /// Returns the new tick.
    pub fn step(&mut self, cmd: ActuatorCommand) -> Tick {
        if self.collision.is_some() {
            return self.clock.step();
        }
        self.ego.step(cmd, &self.road);
        // Lateral disturbance scales with speed: crosswind and road crown
        // displace a fast car more per second than a crawling one. Gusts are
        // physically bounded, so the process is clamped.
        let speed_frac = (self.ego.speed().mps() / 26.8).max(0.0);
        let drift_mps =
            self.disturbance.step(&mut self.rng).clamp(-0.8, 0.8) * speed_frac.powf(1.5);
        self.ego
            .nudge_lateral(Distance::meters(drift_mps * DT.secs()));
        self.lead.step(self.clock.now());
        let tick = self.clock.step();

        // Lane-invasion tracking.
        self.invasions
            .step(self.ego.left_edge(), self.ego.right_edge(), &self.road);

        // Collision with the lead: longitudinal contact plus lateral overlap.
        let lateral_overlap = self.ego.d().abs()
            < (self.ego.params().width + Distance::meters(1.82)) / 2.0;
        if self.gap() <= Distance::ZERO && lateral_overlap {
            self.collision = Some((tick, CollisionKind::LeadVehicle));
        } else if self
            .road
            .guardrail_clearance(self.ego.left_edge(), self.ego.right_edge())
            < Distance::ZERO
        {
            self.collision = Some((tick, CollisionKind::Guardrail));
        } else {
            // A convoy member is only hit when the ego enters the lane
            // dangerously: convoy drivers accommodate slow, shallow merges
            // but cannot react to a fast cut-in or a large speed differential.
            // Convoy drivers yield to slow, shallow merges; only a genuine
            // cut-across (high lateral rate) cannot be avoided.
            let lateral_rate = self.ego.speed().mps() * self.ego.heading().sin();
            let dangerous = lateral_rate.abs() > 1.5;
            if dangerous
                && self.neighbors.collides(
                    tick.time(),
                    self.ego.s(),
                    self.ego.d(),
                    self.ego.params().length,
                    self.ego.params().width,
                )
            {
                self.collision = Some((tick, CollisionKind::NeighborVehicle));
            }
        }
        tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioId;
    use units::{Accel, Angle};

    fn world(id: ScenarioId, gap: f64) -> World {
        World::new(Scenario::new(id, Distance::meters(gap)), 0)
    }

    #[test]
    fn initial_conditions_match_scenario() {
        let w = world(ScenarioId::S2, 70.0);
        assert_eq!(w.gap(), Distance::meters(70.0));
        assert!((w.ego().speed().mph() - 60.0).abs() < 1e-9);
        assert!((w.lead().speed().mph() - 50.0).abs() < 1e-9);
        assert!((w.relative_speed().mph() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn coasting_into_slow_lead_collides() {
        let mut w = world(ScenarioId::S1, 50.0);
        // Steer just enough to track the curve (wheel angle = ratio x
        // road-wheel angle), but nobody brakes: 60 mph ego vs 35 mph lead,
        // 50 m gap -> closing at 11.2 m/s, impact in ~4.5 s.
        let curve_steer = Angle::from_radians(2.0 * 2.7 / 2500.0);
        let mut collided_at = None;
        for _ in 0..1000 {
            w.step(ActuatorCommand {
                accel: Accel::ZERO,
                steer: curve_steer,
            });
            if let Some((tick, kind)) = w.collision() {
                collided_at = Some((tick, kind));
                break;
            }
        }
        let (tick, kind) = collided_at.expect("must collide");
        assert_eq!(kind, CollisionKind::LeadVehicle);
        let t = tick.time().secs();
        assert!((3.5..6.0).contains(&t), "impact around 4.5 s, got {t}");
    }

    #[test]
    fn world_freezes_after_collision() {
        let mut w = world(ScenarioId::S1, 50.0);
        for _ in 0..1000 {
            w.step(ActuatorCommand::default());
        }
        let (tick, _) = w.collision().unwrap();
        let s_at_crash = w.ego().s();
        w.step(ActuatorCommand {
            accel: Accel::from_mps2(2.0),
            steer: Angle::ZERO,
        });
        assert_eq!(w.ego().s(), s_at_crash, "frozen after crash");
        assert!(w.now() > tick);
    }

    #[test]
    fn hard_steer_right_hits_guardrail() {
        let mut w = world(ScenarioId::S2, 100.0);
        let cmd = ActuatorCommand {
            accel: Accel::ZERO,
            steer: Angle::from_degrees(-0.5),
        };
        let mut hit = None;
        for _ in 0..500 {
            w.step(cmd);
            if let Some((tick, kind)) = w.collision() {
                hit = Some((tick, kind));
                break;
            }
        }
        let (tick, kind) = hit.expect("steering attack reaches the rail");
        assert_eq!(kind, CollisionKind::Guardrail);
        // The paper reports steering hazards within ~1.1-1.6 s; the rail is a
        // little farther than the lane line.
        let t = tick.time().secs();
        assert!((0.8..3.0).contains(&t), "rail contact at {t} s");
    }

    #[test]
    fn steering_left_takes_longer_than_right() {
        // The asymmetry behind the paper's Observation 5 details: the ego
        // starts right of centre, so the right rail is much closer.
        let time_to_rail = |steer_deg: f64| {
            let mut w = world(ScenarioId::S2, 200.0);
            let cmd = ActuatorCommand {
                accel: Accel::ZERO,
                steer: Angle::from_degrees(steer_deg),
            };
            for _ in 0..3000 {
                w.step(cmd);
                if let Some((tick, _)) = w.collision() {
                    return tick.time().secs();
                }
            }
            f64::INFINITY
        };
        let right = time_to_rail(-0.5);
        let left = time_to_rail(0.5);
        assert!(right < left, "right rail closer: {right} vs {left}");
    }

    #[test]
    fn lane_invasions_counted_via_world() {
        let mut w = world(ScenarioId::S2, 200.0);
        assert_eq!(w.lane_invasions(), 0);
        // Steer left until across the line.
        for _ in 0..250 {
            w.step(ActuatorCommand {
                accel: Accel::ZERO,
                steer: Angle::from_degrees(0.4),
            });
        }
        assert!(w.lane_invasions() >= 1);
    }

    #[test]
    fn run_to_completion() {
        let mut w = world(ScenarioId::S2, 100.0);
        // Mild braking keeps the ego behind the lead for the whole run.
        while !w.finished() {
            let cmd = if w.gap().raw() < 30.0 {
                ActuatorCommand {
                    accel: Accel::from_mps2(-1.0),
                    steer: Angle::ZERO,
                }
            } else {
                ActuatorCommand::default()
            };
            w.step(cmd);
        }
        assert_eq!(w.now().index(), units::STEPS_PER_SIM);
    }
}
