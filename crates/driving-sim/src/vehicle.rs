//! The ego vehicle: a kinematic bicycle model with first-order actuator lag.

use serde::{Deserialize, Serialize};
use units::{Accel, Angle, Distance, Seconds, Speed, DT};

use crate::Road;

/// Physical parameters of the simulated car (roughly a mid-size sedan, the
/// class OpenPilot most commonly runs on).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Wheelbase.
    pub wheelbase: Distance,
    /// Overall width (used for lane-invasion and guardrail contact).
    pub width: Distance,
    /// Overall length (used for gap computation).
    pub length: Distance,
    /// Time constant of the longitudinal actuator (engine/brake) response.
    pub accel_tau: Seconds,
    /// Maximum slew rate of the steering actuator, per second (in
    /// steering-wheel degrees, like the commands).
    pub steer_rate_limit: Angle,
    /// Steering-column ratio: steering-wheel angle / road-wheel angle.
    /// Commands on the CAN bus are steering-wheel degrees (as on real
    /// angle-controlled cars); the tires see `cmd / ratio`.
    pub steering_ratio: f64,
    /// Hardest physically possible deceleration (panic braking).
    pub max_brake: Accel,
    /// Strongest physically possible acceleration.
    pub max_accel: Accel,
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self {
            wheelbase: Distance::meters(2.7),
            width: Distance::meters(1.82),
            length: Distance::meters(4.7),
            accel_tau: Seconds::new(0.25),
            steer_rate_limit: Angle::from_degrees(5.0),
            steering_ratio: 2.0,
            max_brake: Accel::from_mps2(-8.0),
            max_accel: Accel::from_mps2(3.0),
        }
    }
}

/// The command applied to the actuators each control cycle: a net
/// longitudinal acceleration request (positive gas, negative brake) and a
/// road-wheel steering angle request.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ActuatorCommand {
    /// Longitudinal acceleration request.
    pub accel: Accel,
    /// Road-wheel steering angle request.
    pub steer: Angle,
}

/// Ego vehicle state in road-aligned coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    params: VehicleParams,
    /// Longitudinal position along the road.
    s: Distance,
    /// Lateral offset from the ego-lane centre (positive left).
    d: Distance,
    /// Heading error relative to the road tangent.
    heading: Angle,
    /// Current speed (never negative).
    speed: Speed,
    /// Realised longitudinal acceleration.
    accel: Accel,
    /// Realised road-wheel steering angle.
    steer: Angle,
}

impl Vehicle {
    /// Creates a vehicle at longitudinal position `s`, lateral offset `d`,
    /// travelling at `speed` along the road.
    pub fn new(params: VehicleParams, s: Distance, d: Distance, speed: Speed) -> Self {
        Self {
            params,
            s,
            d,
            heading: Angle::ZERO,
            speed,
            accel: Accel::ZERO,
            steer: Angle::ZERO,
        }
    }

    /// Vehicle parameters.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Longitudinal position.
    pub fn s(&self) -> Distance {
        self.s
    }

    /// Lateral offset from the ego-lane centre (positive left).
    pub fn d(&self) -> Distance {
        self.d
    }

    /// Heading error relative to the road tangent.
    pub fn heading(&self) -> Angle {
        self.heading
    }

    /// Current speed.
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// Realised longitudinal acceleration.
    pub fn accel(&self) -> Accel {
        self.accel
    }

    /// Realised road-wheel steering angle.
    pub fn steer(&self) -> Angle {
        self.steer
    }

    /// Lateral position of the car's left edge.
    pub fn left_edge(&self) -> Distance {
        self.d + self.params.width / 2.0
    }

    /// Lateral position of the car's right edge.
    pub fn right_edge(&self) -> Distance {
        self.d - self.params.width / 2.0
    }

    /// Applies an external lateral displacement (crosswind / road crown
    /// disturbance). Called by the world each tick.
    pub fn nudge_lateral(&mut self, delta: Distance) {
        self.d += delta;
    }

    /// Advances the vehicle by one 10 ms control cycle under `cmd`.
    ///
    /// The longitudinal actuator follows the request with a first-order lag
    /// and is clamped to the physical envelope; the steering actuator is
    /// slew-rate limited. Speed never goes negative (no reversing).
    pub fn step(&mut self, cmd: ActuatorCommand, road: &Road) {
        let dt = DT.secs();

        // Longitudinal: first-order lag toward the request.
        let target = cmd.accel.clamp(self.params.max_brake, self.params.max_accel);
        let alpha = dt / (self.params.accel_tau.secs() + dt);
        // adas-lint: allow(R3, reason = "plant model integrating its own actuator state, not a command path")
        self.accel = self.accel + (target - self.accel) * alpha;
        let mut v = self.speed.mps() + self.accel.mps2() * dt;
        if v < 0.0 {
            v = 0.0;
            // adas-lint: allow(R3, reason = "plant model integrating its own actuator state, not a command path")
            self.accel = Accel::ZERO;
        }

        // Steering: slew-rate limited toward the request.
        let max_delta = self.params.steer_rate_limit * dt;
        let err = cmd.steer - self.steer;
        let delta = err.clamp(-max_delta, max_delta);
        // adas-lint: allow(R3, reason = "plant model integrating its own actuator state, not a command path")
        self.steer += delta;

        // Bicycle-model kinematics in Frenet coordinates. The commanded
        // angle is at the steering wheel; the road wheels see it through
        // the column ratio.
        let kappa = road.curvature(self.s);
        let road_wheel = self.steer / self.params.steering_ratio;
        let yaw_rate = v * (road_wheel.tan() / self.params.wheelbase.raw() - kappa);
        self.heading += Angle::from_radians(yaw_rate * dt);
        self.d += Distance::meters(v * self.heading.sin() * dt);
        self.s += Distance::meters(v * self.heading.cos() * dt);
        self.speed = Speed::from_mps(v);
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;

    fn vehicle(speed_mph: f64) -> Vehicle {
        Vehicle::new(
            VehicleParams::default(),
            Distance::ZERO,
            Distance::ZERO,
            units::Speed::from_mph(speed_mph),
        )
    }

    fn run(v: &mut Vehicle, cmd: ActuatorCommand, road: &Road, steps: usize) {
        for _ in 0..steps {
            v.step(cmd, road);
        }
    }

    #[test]
    fn coasting_straight_stays_in_lane() {
        let road = Road::straight();
        let mut v = vehicle(60.0);
        run(&mut v, ActuatorCommand::default(), &road, 1000);
        assert!(v.d().raw().abs() < 1e-9, "no lateral drift when straight");
        assert!((v.s().raw() - 26.8224 * 10.0).abs() < 0.5);
    }

    #[test]
    fn uncorrected_curve_drifts_right() {
        // On a left curve with zero steering, the car departs toward the
        // outside (right side) of the lane — the reason ALC must steer left.
        let road = Road::default();
        let mut v = vehicle(60.0);
        run(&mut v, ActuatorCommand::default(), &road, 300);
        assert!(v.d().raw() < -0.1, "drifted right, d = {}", v.d());
    }

    #[test]
    fn acceleration_has_first_order_lag() {
        let road = Road::straight();
        let mut v = vehicle(30.0);
        let cmd = ActuatorCommand {
            accel: Accel::from_mps2(2.0),
            steer: Angle::ZERO,
        };
        v.step(cmd, &road);
        assert!(
            v.accel().mps2() > 0.0 && v.accel().mps2() < 2.0,
            "lagging toward the request"
        );
        run(&mut v, cmd, &road, 200);
        assert!((v.accel().mps2() - 2.0).abs() < 0.01, "converged");
    }

    #[test]
    fn physical_envelope_clamps_requests() {
        let road = Road::straight();
        let mut v = vehicle(60.0);
        run(
            &mut v,
            ActuatorCommand {
                accel: Accel::from_mps2(-50.0),
                steer: Angle::ZERO,
            },
            &road,
            200,
        );
        // Even a -50 m/s^2 request cannot exceed max_brake of -8.
        assert!(v.accel().mps2() >= -8.0 - 1e-9);
    }

    #[test]
    fn speed_never_negative() {
        let road = Road::straight();
        let mut v = vehicle(5.0);
        run(
            &mut v,
            ActuatorCommand {
                accel: Accel::from_mps2(-8.0),
                steer: Angle::ZERO,
            },
            &road,
            2000,
        );
        assert_eq!(v.speed().mps(), 0.0);
        assert_eq!(v.accel(), Accel::ZERO, "no residual decel at standstill");
    }

    #[test]
    fn steering_is_rate_limited() {
        let road = Road::straight();
        let mut v = vehicle(60.0);
        v.step(
            ActuatorCommand {
                accel: Accel::ZERO,
                steer: Angle::from_degrees(1.0),
            },
            &road,
        );
        // 5 deg/s limit * 10 ms = 0.05 deg per step.
        assert!((v.steer().degrees() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn steady_steer_produces_lateral_motion() {
        let road = Road::straight();
        let mut v = vehicle(60.0);
        run(
            &mut v,
            ActuatorCommand {
                accel: Accel::ZERO,
                steer: Angle::from_degrees(0.5),
            },
            &road,
            150, // 1.5 s
        );
        // The paper's steering attacks cause lane departure in ~1.1-1.6 s.
        assert!(
            v.d().raw() > 0.8,
            "0.5 deg at 60 mph departs the lane quickly; d = {}",
            v.d()
        );
    }

    #[test]
    fn edges_follow_width() {
        let v = vehicle(0.0);
        assert!((v.left_edge().raw() - 0.91).abs() < 1e-12);
        assert!((v.right_edge().raw() + 0.91).abs() < 1e-12);
    }
}
