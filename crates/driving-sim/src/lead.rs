//! The lead vehicle and its scripted behaviours.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use units::{Accel, Distance, Seconds, Speed, Tick, DT};

use crate::OrnsteinUhlenbeck;

/// Scripted longitudinal behaviour of the lead vehicle, matching the paper's
/// driving scenarios (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LeadBehavior {
    /// Cruise at a constant speed (S1: 35 mph, S2: 50 mph).
    Cruise(Speed),
    /// Cruise at `from`, then from `at` change speed toward `to` with a
    /// comfortable 1 m/s² ramp (S3: 50→35 mph, S4: 35→50 mph).
    ChangeSpeed {
        /// Initial speed.
        from: Speed,
        /// Final speed.
        to: Speed,
        /// Time at which the speed change begins.
        at: Seconds,
    },
}

impl LeadBehavior {
    /// The speed the behaviour starts at.
    pub fn initial_speed(&self) -> Speed {
        match self {
            LeadBehavior::Cruise(v) => *v,
            LeadBehavior::ChangeSpeed { from, .. } => *from,
        }
    }

    /// The target speed at simulated time `t`.
    pub fn target_speed(&self, t: Seconds) -> Speed {
        match self {
            LeadBehavior::Cruise(v) => *v,
            LeadBehavior::ChangeSpeed { from, to, at } => {
                if t < *at {
                    *from
                } else {
                    let ramp = Accel::from_mps2(1.0) * (t - *at);
                    if to > from {
                        (*from + ramp).min(*to)
                    } else {
                        (*from - ramp).max(*to)
                    }
                }
            }
        }
    }
}

/// The lead vehicle: lane-centred, following its scripted behaviour plus a
/// small natural speed dither (±0.5 m/s-ish), the way a human driver holds a
/// speed. The dither makes the ego's headway time oscillate around its
/// set-point — visiting both the "too close and closing" (rule 1) and
/// "comfortably clear" (rule 2) contexts of the attack's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct LeadVehicle {
    behavior: LeadBehavior,
    s: Distance,
    /// Scripted (behaviour-following) speed, before dither.
    base_speed: Speed,
    /// Actual speed including the dither.
    speed: Speed,
    length: Distance,
    dither: OrnsteinUhlenbeck,
    rng: StdRng,
}

impl LeadVehicle {
    /// Creates a lead vehicle with its rear bumper `gap` ahead of position
    /// zero and no speed dither (exact scripted behaviour).
    pub fn new(behavior: LeadBehavior, gap: Distance) -> Self {
        let mut lead = Self::new_seeded(behavior, gap, 0);
        lead.dither = OrnsteinUhlenbeck::new(1.0, 0.0, DT.secs());
        lead
    }

    /// Creates a lead vehicle with a seeded natural speed dither.
    pub fn new_seeded(behavior: LeadBehavior, gap: Distance, seed: u64) -> Self {
        Self {
            behavior,
            s: gap,
            base_speed: behavior.initial_speed(),
            speed: behavior.initial_speed(),
            length: Distance::meters(4.7),
            // Stationary std ~0.5 m/s, ~5 s correlation time.
            dither: OrnsteinUhlenbeck::new(0.2, 0.32, DT.secs()),
            rng: StdRng::seed_from_u64(seed ^ 0x1EAD),
        }
    }

    /// Longitudinal position of the rear bumper.
    pub fn s(&self) -> Distance {
        self.s
    }

    /// Current speed.
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// Current acceleration implied by the behaviour at time `t`.
    pub fn accel(&self, t: Seconds) -> Accel {
        let target = self.behavior.target_speed(t);
        if (target.mps() - self.base_speed.mps()).abs() < 1e-9 {
            Accel::ZERO
        } else if target > self.base_speed {
            Accel::from_mps2(1.0)
        } else {
            Accel::from_mps2(-1.0)
        }
    }

    /// Vehicle length.
    pub fn length(&self) -> Distance {
        self.length
    }

    /// Advances one control cycle.
    pub fn step(&mut self, now: Tick) {
        let t = now.time();
        let a = self.accel(t);
        let target = self.behavior.target_speed(t);
        let mut v = self.base_speed.mps() + a.mps2() * DT.secs();
        // Do not overshoot the (scripted) target.
        if (a.mps2() > 0.0 && v > target.mps()) || (a.mps2() < 0.0 && v < target.mps()) {
            v = target.mps();
        }
        self.base_speed = Speed::from_mps(v.max(0.0));
        let dither = self.dither.step(&mut self.rng);
        self.speed = Speed::from_mps((v + dither).max(0.0));
        self.s += self.speed * DT;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cruise_holds_speed() {
        let mut lead = LeadVehicle::new(LeadBehavior::Cruise(Speed::from_mph(35.0)), Distance::meters(50.0));
        for i in 0..500 {
            lead.step(Tick::new(i));
        }
        assert!((lead.speed().mph() - 35.0).abs() < 1e-9);
        // 35 mph = 15.6464 m/s; 5 s of travel from 50 m.
        assert!((lead.s().raw() - (50.0 + 15.6464 * 5.0)).abs() < 0.01);
    }

    #[test]
    fn slow_down_reaches_target_without_overshoot() {
        // S3: 50 -> 35 mph starting at t = 10 s.
        let behavior = LeadBehavior::ChangeSpeed {
            from: Speed::from_mph(50.0),
            to: Speed::from_mph(35.0),
            at: Seconds::new(10.0),
        };
        let mut lead = LeadVehicle::new(behavior, Distance::meters(100.0));
        for i in 0..2500 {
            lead.step(Tick::new(i));
            assert!(lead.speed().mph() >= 35.0 - 1e-9);
            assert!(lead.speed().mph() <= 50.0 + 1e-9);
        }
        assert!((lead.speed().mph() - 35.0).abs() < 1e-6, "converged by 25 s");
    }

    #[test]
    fn speed_up_ramps_at_one_mps2() {
        let behavior = LeadBehavior::ChangeSpeed {
            from: Speed::from_mph(35.0),
            to: Speed::from_mph(50.0),
            at: Seconds::new(5.0),
        };
        let mut lead = LeadVehicle::new(behavior, Distance::meters(70.0));
        // At t = 6 s (one second into the ramp) speed rose by ~1 m/s.
        for i in 0..600 {
            lead.step(Tick::new(i));
        }
        let expected = Speed::from_mph(35.0).mps() + 1.0;
        assert!((lead.speed().mps() - expected).abs() < 0.05);
    }

    #[test]
    fn accel_reports_behaviour_phase() {
        let behavior = LeadBehavior::ChangeSpeed {
            from: Speed::from_mph(50.0),
            to: Speed::from_mph(35.0),
            at: Seconds::new(10.0),
        };
        let lead = LeadVehicle::new(behavior, Distance::meters(50.0));
        assert_eq!(lead.accel(Seconds::new(0.0)), Accel::ZERO);
        assert_eq!(lead.accel(Seconds::new(10.5)), Accel::from_mps2(-1.0));
    }
}
