//! Structure-of-arrays columns for lockstep batched simulation.
//!
//! A batched runner steps N independent simulations in lockstep: every
//! stage (sample, control, physics) runs as one tight loop over a
//! contiguous column of per-lane state before the next stage starts, so
//! each stage's code and working set stay hot across all lanes instead of
//! being evicted once per simulation tick. The columns hold exactly the
//! scalar components — the per-lane math is the same code the scalar
//! harness runs, which is what makes batched results bit-identical to the
//! scalar oracle.

use msgbus::schema::{GpsLocation, LaneModel, RadarState};

use crate::{ActuatorCommand, Scenario, SensorSuite, World};

/// A column of independent [`World`]s stepped in lockstep.
#[derive(Debug, Default)]
pub struct WorldColumn {
    worlds: Vec<World>,
}

impl WorldColumn {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a lane's world. (Named `admit`, not `push`: workspace
    /// convention reserves std container method names for std semantics so
    /// the lint's name-based call graph stays precise.)
    pub fn admit(&mut self, scenario: Scenario, seed: u64) {
        self.worlds.push(World::new(scenario, seed));
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether the column holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// The worlds, lane-indexed.
    pub fn as_slice(&self) -> &[World] {
        &self.worlds
    }

    /// Steps every lane whose `live` flag is set with its own command —
    /// the physics stage of one lockstep tick.
    pub fn step_batch(&mut self, cmds: &[ActuatorCommand], live: &[bool]) {
        for ((world, cmd), live) in self.worlds.iter_mut().zip(cmds).zip(live) {
            if *live {
                world.step(*cmd);
            }
        }
    }

    /// Runs one lane's clock out to the end of the simulation. After a
    /// collision the world is frozen and a scalar run only advances the
    /// clock each remaining tick; a batched runner retires the lane by
    /// fast-forwarding those clock-only steps in one burst — the same
    /// number of [`World::step`] calls, so the end state is identical.
    pub fn run_out(&mut self, lane: usize) {
        if let Some(world) = self.worlds.get_mut(lane) {
            while !world.finished() {
                world.step(ActuatorCommand::default());
            }
        }
    }
}

/// A column of per-lane [`SensorSuite`]s with batched sampling.
#[derive(Debug, Default)]
pub struct SensorColumn {
    suites: Vec<SensorSuite>,
}

impl SensorColumn {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a lane's sensor suite, seeded like the scalar harness.
    pub fn admit(&mut self, seed: u64) {
        self.suites.push(SensorSuite::new(seed));
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.suites.len()
    }

    /// Whether the column holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.suites.is_empty()
    }

    /// Samples every live lane's sensors into the per-stream output
    /// columns — the perception stage of one lockstep tick. Each lane
    /// draws from its own RNG stream in the scalar order, so the noise
    /// sequence per lane is bit-identical to a scalar run; lanes whose
    /// `live` flag is clear draw nothing and keep their previous samples.
    pub fn sample_batch(
        &mut self,
        worlds: &WorldColumn,
        live: &[bool],
        gps: &mut [GpsLocation],
        lanes: &mut [LaneModel],
        radars: &mut [RadarState],
    ) {
        let it = self
            .suites
            .iter_mut()
            .zip(worlds.as_slice())
            .zip(live)
            .zip(gps)
            .zip(lanes)
            .zip(radars);
        for (((((suite, world), live), gps), lane), radar) in it {
            if *live {
                let frame = suite.sample(world);
                *gps = frame.gps;
                *lane = frame.lane;
                *radar = frame.radar;
            }
        }
    }
}
