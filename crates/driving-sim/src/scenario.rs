//! The paper's driving scenarios (§IV-A).
//!
//! "The Ego vehicle, cruising at 60 mph from 50, 70, or 100 meters away,
//! approaches a lead vehicle with different behaviors."

use serde::{Deserialize, Serialize};
use units::{Distance, Seconds, Speed};

use crate::LeadBehavior;

/// The three initial gaps to the lead vehicle used in every experiment.
pub const INITIAL_GAPS: [f64; 3] = [50.0, 70.0, 100.0];

/// The four lead-vehicle behaviours of §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioId {
    /// Lead cruises at 35 mph.
    S1,
    /// Lead cruises at 50 mph.
    S2,
    /// Lead slows from 50 mph to 35 mph.
    S3,
    /// Lead accelerates from 35 mph to 50 mph.
    S4,
}

impl ScenarioId {
    /// All four scenarios.
    pub const ALL: [ScenarioId; 4] = [ScenarioId::S1, ScenarioId::S2, ScenarioId::S3, ScenarioId::S4];

    /// The lead behaviour of this scenario. Speed changes start at t = 10 s,
    /// well after the ADAS has settled into following.
    pub fn lead_behavior(self) -> LeadBehavior {
        match self {
            ScenarioId::S1 => LeadBehavior::Cruise(Speed::from_mph(35.0)),
            ScenarioId::S2 => LeadBehavior::Cruise(Speed::from_mph(50.0)),
            ScenarioId::S3 => LeadBehavior::ChangeSpeed {
                from: Speed::from_mph(50.0),
                to: Speed::from_mph(35.0),
                at: Seconds::new(10.0),
            },
            ScenarioId::S4 => LeadBehavior::ChangeSpeed {
                from: Speed::from_mph(35.0),
                to: Speed::from_mph(50.0),
                at: Seconds::new(10.0),
            },
        }
    }

    /// Short label as used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioId::S1 => "S1",
            ScenarioId::S2 => "S2",
            ScenarioId::S3 => "S3",
            ScenarioId::S4 => "S4",
        }
    }
}

/// A fully-specified driving scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Which lead behaviour to run.
    pub id: ScenarioId,
    /// Initial gap from ego front bumper to lead rear bumper.
    pub initial_gap: Distance,
    /// Ego cruise set-speed (60 mph in all paper experiments).
    pub cruise_speed: Speed,
    /// Ego initial lateral offset. The paper initialises the ego "to a lane
    /// closer to the right guardrail": slightly right of centre.
    pub initial_lateral_offset: Distance,
}

impl Scenario {
    /// Creates a scenario with the paper's defaults (60 mph cruise, slight
    /// right offset).
    pub fn new(id: ScenarioId, initial_gap: Distance) -> Self {
        Self {
            id,
            initial_gap,
            cruise_speed: Speed::from_mph(60.0),
            initial_lateral_offset: Distance::meters(-0.25),
        }
    }

    /// The 12 scenario × gap combinations of the paper's experiment matrix.
    pub fn matrix() -> Vec<Scenario> {
        ScenarioId::ALL
            .into_iter()
            .flat_map(|id| {
                INITIAL_GAPS
                    .into_iter()
                    .map(move |g| Scenario::new(id, Distance::meters(g)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_twelve_entries() {
        let m = Scenario::matrix();
        assert_eq!(m.len(), 12);
        // All distinct.
        for (i, a) in m.iter().enumerate() {
            for b in &m[i + 1..] {
                assert!(a.id != b.id || a.initial_gap != b.initial_gap);
            }
        }
    }

    #[test]
    fn scenario_speeds_match_paper() {
        assert_eq!(
            ScenarioId::S1.lead_behavior().initial_speed(),
            Speed::from_mph(35.0)
        );
        assert_eq!(
            ScenarioId::S2.lead_behavior().initial_speed(),
            Speed::from_mph(50.0)
        );
        assert_eq!(
            ScenarioId::S3.lead_behavior().target_speed(Seconds::new(100.0)),
            Speed::from_mph(35.0)
        );
        assert_eq!(
            ScenarioId::S4.lead_behavior().target_speed(Seconds::new(100.0)),
            Speed::from_mph(50.0)
        );
    }

    #[test]
    fn defaults_follow_paper() {
        let s = Scenario::new(ScenarioId::S1, Distance::meters(50.0));
        assert_eq!(s.cruise_speed, Speed::from_mph(60.0));
        assert!(s.initial_lateral_offset.raw() < 0.0, "starts right of centre");
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = ScenarioId::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["S1", "S2", "S3", "S4"]);
    }
}
