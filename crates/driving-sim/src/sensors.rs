//! Sensor models: GPS, radar and the camera/lane-perception proxy.
//!
//! Each sensor samples the ground-truth [`World`] state, perturbs it with
//! seeded noise, and publishes a Cereal-style message — reproducing the
//! streams the paper's attacker eavesdrops on (`gpsLocationExternal`,
//! `modelV2`, `radarState`).

use msgbus::schema::{GpsLocation, LaneModel, LeadTrack, RadarState};
use msgbus::{Bus, Payload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use units::{Accel, Distance, Speed, Tick, DT};

use crate::noise::{gaussian, OrnsteinUhlenbeck};
use crate::World;

/// Radar detection range — and, by construction, the lead-visibility window
/// shared by every consumer of the perception stack: the sensor suite drops
/// leads beyond it, the driver model ignores them, and the hazard detector
/// and flight recorder treat them as "no lead". One constant, one truth.
pub const RADAR_RANGE: Distance = Distance::meters(150.0);

/// One synchronized reading of all sensors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SensorFrame {
    /// GPS sample.
    pub gps: GpsLocation,
    /// Lane-perception sample.
    pub lane: LaneModel,
    /// Radar sample.
    pub radar: RadarState,
}

/// The ego vehicle's sensor suite with per-run seeded noise.
#[derive(Debug)]
pub struct SensorSuite {
    rng: StdRng,
    /// Slow wander in the perceived lateral position — the dominant cause of
    /// the attack-free lane invasions of the paper's Fig. 7.
    lane_drift: OrnsteinUhlenbeck,
    gps_speed_sigma: f64,
    radar_dist_sigma: f64,
    radar_speed_sigma: f64,
    lane_line_sigma: f64,
}

impl SensorSuite {
    /// Creates a sensor suite seeded for one simulation run.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            lane_drift: OrnsteinUhlenbeck::new(0.3, 0.05, DT.secs()),
            gps_speed_sigma: 0.05,
            radar_dist_sigma: 0.25,
            radar_speed_sigma: 0.15,
            lane_line_sigma: 0.02,
        }
    }

    /// Samples every sensor against the current world state.
    pub fn sample(&mut self, world: &World) -> SensorFrame {
        let ego = world.ego();
        let road = world.road();

        let gps = GpsLocation {
            speed: Speed::from_mps(
                (ego.speed().mps() + self.gps_speed_sigma * gaussian(&mut self.rng)).max(0.0),
            ),
            bearing: ego.heading(),
        };

        // Perceived lateral position = truth + drift, measured against the
        // lane the camera currently sees the car in: once the car crosses
        // into the left neighbour lane, perception re-anchors to that lane
        // (a camera tracks the lines around the car, not the lane the trip
        // started in). This re-anchoring is what ends a steering attack's
        // edge context after a lane change.
        let drift = self.lane_drift.step(&mut self.rng);
        let width = road.lane_width().raw();
        let lane_index = (ego.d().raw() / width).round().clamp(0.0, 2.0);
        let d_perceived = ego.d().raw() - lane_index * width + drift;
        let half = width / 2.0;
        let jitter = self.lane_line_sigma * gaussian(&mut self.rng);
        let lane = LaneModel {
            left_line: Distance::meters(half - d_perceived + jitter),
            right_line: Distance::meters(half + d_perceived + jitter),
            lane_width: road.lane_width(),
            curvature: road.curvature(ego.s())
                + 2e-5 * gaussian(&mut self.rng),
        };

        // The radar tracks the nearest in-path vehicle of the lane the ego
        // currently occupies: the scenario lead in its own lane, or the
        // convoy member ahead once the ego has moved into the left lane.
        let in_left_lane = (ego.d().raw() - 3.7).abs() < 1.85;
        let radar = if in_left_lane {
            let member = world
                .neighbors()
                .member_ahead(world.now().time(), ego.s());
            let gap = member - ego.s();
            RadarState {
                lead: (gap < RADAR_RANGE).then(|| LeadTrack {
                    d_rel: Distance::meters(
                        (gap.raw() + self.radar_dist_sigma * gaussian(&mut self.rng)).max(0.0),
                    ),
                    v_lead: Speed::from_mps(
                        (world.neighbors().speed.mps()
                            + self.radar_speed_sigma * gaussian(&mut self.rng))
                        .max(0.0),
                    ),
                    a_lead: Accel::ZERO,
                }),
            }
        } else {
            let gap = world.gap();
            let lead_visible = gap > Distance::ZERO
                && gap < RADAR_RANGE
                && ego.d().abs() < Distance::meters(2.5);
            RadarState {
                lead: lead_visible.then(|| LeadTrack {
                    d_rel: Distance::meters(
                        (gap.raw() + self.radar_dist_sigma * gaussian(&mut self.rng)).max(0.0),
                    ),
                    v_lead: Speed::from_mps(
                        (world.lead().speed().mps()
                            + self.radar_speed_sigma * gaussian(&mut self.rng))
                        .max(0.0),
                    ),
                    a_lead: world.lead().accel(world.now().time()),
                }),
            }
        };

        SensorFrame { gps, lane, radar }
    }

    /// Samples every sensor and publishes the three Cereal-style messages.
    pub fn publish(&mut self, bus: &Bus, tick: Tick, world: &World) -> SensorFrame {
        let frame = self.sample(world);
        bus.publish(tick, Payload::GpsLocationExternal(frame.gps));
        bus.publish(tick, Payload::ModelV2(frame.lane));
        bus.publish(tick, Payload::RadarState(frame.radar));
        frame
    }
}

/// Ground-truth lead acceleration is exposed through the radar message; keep
/// the type here so `World` stays the single source of truth.
#[allow(dead_code)]
fn _type_assertions(a: Accel) -> Accel {
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActuatorCommand, Scenario, ScenarioId};
    use msgbus::Topic;

    fn world(gap: f64) -> World {
        World::new(
            Scenario::new(ScenarioId::S1, Distance::meters(gap)),
            1234,
        )
    }

    #[test]
    fn gps_tracks_true_speed() {
        let w = world(70.0);
        let mut sensors = SensorSuite::new(1);
        let mut err_acc = 0.0;
        for _ in 0..200 {
            let f = sensors.sample(&w);
            err_acc += f.gps.speed.mps() - w.ego().speed().mps();
        }
        assert!((err_acc / 200.0).abs() < 0.02, "unbiased speed estimate");
    }

    #[test]
    fn radar_sees_lead_within_range() {
        let w = world(70.0);
        let mut sensors = SensorSuite::new(2);
        let f = sensors.sample(&w);
        let lead = f.radar.lead.expect("lead at 70 m is visible");
        assert!((lead.d_rel.raw() - 70.0).abs() < 2.0);
        assert!((lead.v_lead.mph() - 35.0).abs() < 2.0);
    }

    #[test]
    fn radar_blind_beyond_range() {
        let w = world(200.0);
        let mut sensors = SensorSuite::new(3);
        assert!(sensors.sample(&w).radar.lead.is_none());
    }

    #[test]
    fn lane_lines_are_consistent_with_offset() {
        let mut w = world(70.0);
        // Drive a bit so the ego keeps its initial right offset.
        for _ in 0..10 {
            w.step(ActuatorCommand::default());
        }
        let mut sensors = SensorSuite::new(4);
        let mut sum_width = 0.0;
        let mut sum_offset = 0.0;
        for _ in 0..500 {
            let f = sensors.sample(&w);
            sum_width += (f.lane.left_line + f.lane.right_line).raw();
            sum_offset += f.lane.lateral_offset().raw();
        }
        assert!(
            (sum_width / 500.0 - 3.7).abs() < 0.05,
            "line distances sum to lane width"
        );
        assert!(
            (sum_offset / 500.0 - w.ego().d().raw()).abs() < 1.0,
            "perceived offset tracks truth within drift bounds (stationary
             drift std is ~0.35 m and 5 s is about one correlation time)"
        );
    }

    #[test]
    fn publish_emits_three_topics() {
        let w = world(70.0);
        let bus = Bus::new();
        let mut gps = bus.subscribe(&[Topic::GpsLocationExternal]);
        let mut model = bus.subscribe(&[Topic::ModelV2]);
        let mut radar = bus.subscribe(&[Topic::RadarState]);
        let mut sensors = SensorSuite::new(5);
        sensors.publish(&bus, Tick::ZERO, &w);
        assert_eq!(gps.drain().len(), 1);
        assert_eq!(model.drain().len(), 1);
        assert_eq!(radar.drain().len(), 1);
    }

    #[test]
    fn same_seed_same_readings() {
        let w = world(70.0);
        let sample = |seed| {
            let mut s = SensorSuite::new(seed);
            (0..50).map(|_| s.sample(&w).gps.speed.mps()).collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }
}
