//! Collision and lane-invasion detection (CARLA's collision and
//! `lane_invasion` sensors).

use serde::{Deserialize, Serialize};
use units::Distance;

use crate::Road;

/// What the ego vehicle collided with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollisionKind {
    /// Rear-ended the lead vehicle (the paper's accident A1).
    LeadVehicle,
    /// Contacted a guardrail or road-side object (accident A3).
    Guardrail,
    /// Collided with a vehicle in the neighbouring lane (also accident A3).
    NeighborVehicle,
}

/// Edge-triggered lane-invasion counter.
///
/// CARLA emits one `lane_invasion` event when a tire touches a lane marking;
/// re-triggering requires returning fully inside the lane first. The paper
/// counts these per second (0.46/s even without attacks, Observation 1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LaneInvasionTracker {
    invading: bool,
    events: u64,
}

/// Hysteresis margin: the car must come this far back inside the lane before
/// another invasion can be counted.
const REARM_MARGIN: Distance = Distance::meters(0.05);

impl LaneInvasionTracker {
    /// Creates a tracker with no events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total invasion events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Whether the car is currently touching or across a lane line.
    pub fn is_invading(&self) -> bool {
        self.invading
    }

    /// Updates the tracker with the car's current edges; returns `true` when
    /// a new invasion event fires this step.
    pub fn step(&mut self, left_edge: Distance, right_edge: Distance, road: &Road) -> bool {
        let outside = left_edge > road.left_line() || right_edge < road.right_line();
        let fully_inside = left_edge < road.left_line() - REARM_MARGIN
            && right_edge > road.right_line() + REARM_MARGIN;
        match (self.invading, outside, fully_inside) {
            (false, true, _) => {
                self.invading = true;
                self.events += 1;
                true
            }
            (true, _, true) => {
                self.invading = false;
                false
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(d: f64, width: f64) -> (Distance, Distance) {
        (
            Distance::meters(d + width / 2.0),
            Distance::meters(d - width / 2.0),
        )
    }

    #[test]
    fn centred_car_never_invades() {
        let road = Road::default();
        let mut tracker = LaneInvasionTracker::new();
        let (l, r) = edges(0.0, 1.82);
        for _ in 0..100 {
            assert!(!tracker.step(l, r, &road));
        }
        assert_eq!(tracker.events(), 0);
    }

    #[test]
    fn crossing_fires_once_until_rearmed() {
        let road = Road::default();
        let mut tracker = LaneInvasionTracker::new();
        // Lane half-width 1.85, car half-width 0.91: invasion at |d| > 0.94.
        let (l, r) = edges(1.0, 1.82);
        assert!(tracker.step(l, r, &road), "first touch fires");
        assert!(!tracker.step(l, r, &road), "holding does not re-fire");
        // Not yet re-armed at the boundary.
        let (l, r) = edges(0.93, 1.82);
        assert!(!tracker.step(l, r, &road));
        assert!(tracker.is_invading(), "needs the margin to re-arm");
        // Fully inside re-arms; next crossing fires again.
        let (l, r) = edges(0.0, 1.82);
        assert!(!tracker.step(l, r, &road));
        let (l, r) = edges(-1.0, 1.82);
        assert!(tracker.step(l, r, &road), "right-side crossing fires too");
        assert_eq!(tracker.events(), 2);
    }

    #[test]
    fn oscillation_near_line_counts_each_full_crossing() {
        let road = Road::default();
        let mut tracker = LaneInvasionTracker::new();
        let mut count = 0;
        for cycle in 0..5 {
            let (l, r) = edges(1.2, 1.82);
            if tracker.step(l, r, &road) {
                count += 1;
            }
            let (l, r) = edges(0.0, 1.82);
            tracker.step(l, r, &road);
            let _ = cycle;
        }
        assert_eq!(count, 5);
        assert_eq!(tracker.events(), 5);
    }
}
