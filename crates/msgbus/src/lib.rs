//! A Cereal-style typed publisher/subscriber message bus.
//!
//! OpenPilot's internal processes exchange state over
//! [Cereal](https://github.com/commaai/cereal), a pub/sub messaging layer in
//! which sensing and perception modules publish events (`gpsLocationExternal`,
//! `modelV2`, `radarState`, …) that control modules — *and any malicious
//! software that manages to run on the device* — can subscribe to (paper
//! §III-C, Fig. 3). This crate reproduces those semantics in-process:
//!
//! * [`schema`] defines the typed message payloads (the `log.capnp`
//!   equivalent),
//! * [`Topic`] names the event streams,
//! * [`Bus`] delivers every published [`Envelope`] to all matching
//!   [`Subscriber`]s, with no access control — which is precisely the
//!   vulnerability the attack's eavesdropping step exploits,
//! * [`MessageLog`] records traffic for offline analysis (the attacker's
//!   reverse-engineering step).
//!
//! # Examples
//!
//! ```
//! use msgbus::{Bus, Topic, Payload};
//! use msgbus::schema::GpsLocation;
//! use units::{Speed, Angle, Tick};
//!
//! let bus = Bus::new();
//! // A (possibly malicious) subscriber taps the GPS stream.
//! let mut eavesdropper = bus.subscribe(&[Topic::GpsLocationExternal]);
//!
//! bus.publish(Tick::ZERO, Payload::GpsLocationExternal(GpsLocation {
//!     speed: Speed::from_mph(60.0),
//!     bearing: Angle::ZERO,
//! }));
//!
//! let messages = eavesdropper.drain();
//! assert_eq!(messages.len(), 1);
//! assert_eq!(messages[0].topic(), Topic::GpsLocationExternal);
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

mod bus;
mod envelope;
mod log;
pub mod schema;
mod topic;

pub use bus::{Bus, Subscriber};
pub use envelope::Envelope;
pub use log::MessageLog;
pub use schema::Payload;
pub use topic::Topic;
