//! Event-stream names, mirroring the Cereal services the paper eavesdrops on.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The event streams published on the [`Bus`](crate::Bus).
///
/// Names follow the Cereal services from the paper's §III-C: the attacker
/// subscribes to `gpsLocationExternal` (ego speed), `modelV2` (lane-line
/// positions) and `radarState` (lead relative speed/distance); the ADAS
/// additionally publishes its fused car state, its actuator outputs and its
/// controls/alert state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Topic {
    /// Ego speed and bearing from the GPS module (`gpsLocationExternal`).
    GpsLocationExternal,
    /// Lane-line positions from the perception model (`modelV2`).
    ModelV2,
    /// Lead-vehicle track from the radar module (`radarState`).
    RadarState,
    /// Fused vehicle state used by the planner (`carState`).
    CarState,
    /// High-level actuator command issued by the controller (`carControl`).
    CarControl,
    /// Controller status and active alerts (`controlsState`).
    ControlsState,
}

impl Topic {
    /// Number of defined topics (the length of [`Topic::ALL`]).
    pub const COUNT: usize = 6;

    /// All defined topics.
    pub const ALL: [Topic; 6] = [
        Topic::GpsLocationExternal,
        Topic::ModelV2,
        Topic::RadarState,
        Topic::CarState,
        Topic::CarControl,
        Topic::ControlsState,
    ];

    /// Dense index of the topic within [`Topic::ALL`], for per-topic
    /// counter arrays.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(msgbus::Topic::ALL[msgbus::Topic::RadarState.index()],
    ///            msgbus::Topic::RadarState);
    /// ```
    pub const fn index(self) -> usize {
        match self {
            Topic::GpsLocationExternal => 0,
            Topic::ModelV2 => 1,
            Topic::RadarState => 2,
            Topic::CarState => 3,
            Topic::CarControl => 4,
            Topic::ControlsState => 5,
        }
    }

    /// The Cereal-style service name of the topic.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(msgbus::Topic::ModelV2.service_name(), "modelV2");
    /// ```
    pub fn service_name(self) -> &'static str {
        match self {
            Topic::GpsLocationExternal => "gpsLocationExternal",
            Topic::ModelV2 => "modelV2",
            Topic::RadarState => "radarState",
            Topic::CarState => "carState",
            Topic::CarControl => "carControl",
            Topic::ControlsState => "controlsState",
        }
    }

    /// Parses a Cereal service name back into a topic.
    ///
    /// # Examples
    ///
    /// ```
    /// use msgbus::Topic;
    /// assert_eq!(Topic::from_service_name("radarState"), Some(Topic::RadarState));
    /// assert_eq!(Topic::from_service_name("bogus"), None);
    /// ```
    pub fn from_service_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.service_name() == name)
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.service_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_names_round_trip() {
        for t in Topic::ALL {
            assert_eq!(Topic::from_service_name(t.service_name()), Some(t));
        }
    }

    #[test]
    fn unknown_service_name_is_none() {
        assert_eq!(Topic::from_service_name("modelV3"), None);
        assert_eq!(Topic::from_service_name(""), None);
    }

    #[test]
    fn all_topics_unique() {
        for (i, a) in Topic::ALL.iter().enumerate() {
            for b in &Topic::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_matches_service_name() {
        assert_eq!(format!("{}", Topic::CarControl), "carControl");
    }
}
