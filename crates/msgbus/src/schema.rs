//! Typed message payloads — the `log.capnp` equivalent of this reproduction.
//!
//! Sign conventions used throughout the workspace:
//!
//! * Lateral positions are positive **to the left** of the lane centre
//!   (ISO 8855 vehicle frame).
//! * Longitudinal acceleration is positive for gas, negative for brake.
//! * Road curvature is positive for a left-hand curve.

use serde::{Deserialize, Serialize};
use units::{Accel, Angle, Distance, Speed};

use crate::Topic;

/// Ego position fix published by the GPS module.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GpsLocation {
    /// Ground speed of the ego vehicle.
    pub speed: Speed,
    /// Heading relative to the road tangent.
    pub bearing: Angle,
}

/// Lane-line estimate published by the perception model (`modelV2`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LaneModel {
    /// Lateral distance from the ego centreline to the left lane line
    /// (positive when the line is to the left, i.e. normally).
    pub left_line: Distance,
    /// Lateral distance from the ego centreline to the right lane line
    /// (positive when the line is to the right, i.e. normally).
    pub right_line: Distance,
    /// Estimated lane width.
    pub lane_width: Distance,
    /// Estimated road curvature ahead, in 1/m; positive curves left.
    pub curvature: f64,
}

impl LaneModel {
    /// Lateral offset of the ego centreline from the lane centre
    /// (positive to the left).
    ///
    /// # Examples
    ///
    /// ```
    /// use msgbus::schema::LaneModel;
    /// use units::Distance;
    ///
    /// let m = LaneModel {
    ///     left_line: Distance::meters(2.2),
    ///     right_line: Distance::meters(1.5),
    ///     lane_width: Distance::meters(3.7),
    ///     curvature: 0.0,
    /// };
    /// // The car sits 0.35 m right of centre.
    /// assert!((m.lateral_offset().raw() + 0.35).abs() < 1e-9);
    /// ```
    pub fn lateral_offset(&self) -> Distance {
        (self.right_line - self.left_line) / 2.0
    }
}

/// A tracked lead vehicle, as published in `radarState`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadTrack {
    /// Longitudinal gap to the lead's rear bumper.
    pub d_rel: Distance,
    /// Absolute speed of the lead vehicle.
    pub v_lead: Speed,
    /// Acceleration of the lead vehicle.
    pub a_lead: Accel,
}

/// Radar module output.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RadarState {
    /// The primary lead track, if one is detected.
    pub lead: Option<LeadTrack>,
}

/// Fused vehicle state (`carState`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CarState {
    /// Ego speed.
    pub v_ego: Speed,
    /// Ego longitudinal acceleration.
    pub a_ego: Accel,
    /// Current road-wheel steering angle.
    pub steering_angle: Angle,
    /// Cruise set-speed selected by the (simulated) driver.
    pub v_cruise: Speed,
    /// Whether the ADAS is engaged.
    pub cruise_enabled: bool,
}

/// High-level actuator command issued by the controller (`carControl`).
///
/// This is the quantity the paper's attack engine corrupts: it is translated
/// into gas/brake/steering CAN messages just before transmission.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CarControl {
    /// Desired longitudinal acceleration (positive = gas, negative = brake).
    pub accel: Accel,
    /// Desired road-wheel steering angle.
    pub steer: Angle,
}

/// Alerts the ADAS can raise to the driver.
///
/// Deliberately *exhaustive* (unlike [`Payload`]): alert kinds are a
/// safety-critical vocabulary, and adas-lint's R8 requires every consumer
/// to name each variant — adding an alert must be a compile-time event at
/// every match, never absorbed by a `_ =>` arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertKind {
    /// The lateral controller wants more steering than the safety limit
    /// allows (`steerSaturated`). The only alert the paper observed during
    /// its attacks.
    SteerSaturated,
    /// Forward collision warning. The paper found it is *never* raised during
    /// the attacks because the corrupted brake command stays below the
    /// trigger threshold (Observation 2).
    ForwardCollisionWarning,
    /// Driver-monitoring distraction warning.
    DriverDistracted,
    /// The ADAS has degraded (lost a required sensor stream) and switched
    /// off part of its functionality; the driver should prepare to take
    /// over.
    AdasDegraded,
    /// Persistent input loss: the ADAS is executing a controlled fail-safe
    /// stop and the driver must take over immediately.
    FailSafeStop,
}

impl AlertKind {
    /// Human-readable alert name as OpenPilot would display it.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::SteerSaturated => "steer saturated",
            AlertKind::ForwardCollisionWarning => "forward collision warning",
            AlertKind::DriverDistracted => "driver distracted",
            AlertKind::AdasDegraded => "ADAS degraded",
            AlertKind::FailSafeStop => "fail-safe stop",
        }
    }
}

/// Controller status published every cycle (`controlsState`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ControlsState {
    /// Whether lateral+longitudinal control is active.
    pub engaged: bool,
    /// Alerts raised this control cycle.
    pub alerts: Vec<AlertKind>,
}

/// A typed message body; each variant corresponds to one [`Topic`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Payload {
    /// See [`GpsLocation`].
    GpsLocationExternal(GpsLocation),
    /// See [`LaneModel`].
    ModelV2(LaneModel),
    /// See [`RadarState`].
    RadarState(RadarState),
    /// See [`CarState`].
    CarState(CarState),
    /// See [`CarControl`].
    CarControl(CarControl),
    /// See [`ControlsState`].
    ControlsState(ControlsState),
}

impl Payload {
    /// The topic this payload is published on.
    pub fn topic(&self) -> Topic {
        match self {
            Payload::GpsLocationExternal(_) => Topic::GpsLocationExternal,
            Payload::ModelV2(_) => Topic::ModelV2,
            Payload::RadarState(_) => Topic::RadarState,
            Payload::CarState(_) => Topic::CarState,
            Payload::CarControl(_) => Topic::CarControl,
            Payload::ControlsState(_) => Topic::ControlsState,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_topic_mapping_is_total() {
        let samples: Vec<Payload> = vec![
            Payload::GpsLocationExternal(GpsLocation::default()),
            Payload::ModelV2(LaneModel::default()),
            Payload::RadarState(RadarState::default()),
            Payload::CarState(CarState::default()),
            Payload::CarControl(CarControl::default()),
            Payload::ControlsState(ControlsState::default()),
        ];
        let mut topics: Vec<Topic> = samples.iter().map(Payload::topic).collect();
        topics.sort_by_key(|t| t.service_name());
        let mut all = Topic::ALL.to_vec();
        all.sort_by_key(|t| t.service_name());
        assert_eq!(topics, all, "every topic has exactly one payload variant");
    }

    #[test]
    fn lateral_offset_sign_convention() {
        // Car shifted 0.5 m to the left: left line is closer.
        let m = LaneModel {
            left_line: Distance::meters(1.35),
            right_line: Distance::meters(2.35),
            lane_width: Distance::meters(3.7),
            curvature: 0.0,
        };
        assert!((m.lateral_offset().raw() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn alert_labels_are_distinct() {
        let labels = [
            AlertKind::SteerSaturated.label(),
            AlertKind::ForwardCollisionWarning.label(),
            AlertKind::DriverDistracted.label(),
            AlertKind::AdasDegraded.label(),
            AlertKind::FailSafeStop.label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = Payload::RadarState(RadarState {
            lead: Some(LeadTrack {
                d_rel: Distance::meters(50.0),
                v_lead: Speed::from_mph(35.0),
                a_lead: Accel::ZERO,
            }),
        });
        let json = serde_json_like(&p);
        assert!(json.contains("d_rel"), "{json}");
    }

    /// Cheap structural check without pulling in serde_json: serialize into
    /// the debug representation of the serde data model via ron-like format.
    fn serde_json_like(p: &Payload) -> String {
        format!("{p:?}")
    }
}
