//! A published message together with its metadata.

use serde::{Deserialize, Serialize};
use units::Tick;

use crate::{Payload, Topic};

/// A message as delivered to subscribers: payload plus publication metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    seq: u64,
    tick: Tick,
    payload: Payload,
}

impl Envelope {
    /// Creates an envelope. Normally only the [`Bus`](crate::Bus) does this.
    pub fn new(seq: u64, tick: Tick, payload: Payload) -> Self {
        Self { seq, tick, payload }
    }

    /// Monotonically increasing publication sequence number (bus-wide).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Simulation tick at which the message was published.
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// The topic of the payload.
    pub fn topic(&self) -> Topic {
        self.payload.topic()
    }

    /// Borrows the payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Consumes the envelope and returns the payload.
    pub fn into_payload(self) -> Payload {
        self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CarState, GpsLocation};

    #[test]
    fn accessors() {
        let env = Envelope::new(
            7,
            Tick::new(42),
            Payload::GpsLocationExternal(GpsLocation::default()),
        );
        assert_eq!(env.seq(), 7);
        assert_eq!(env.tick(), Tick::new(42));
        assert_eq!(env.topic(), Topic::GpsLocationExternal);
    }

    #[test]
    fn into_payload_preserves_data() {
        let payload = Payload::CarState(CarState::default());
        let env = Envelope::new(0, Tick::ZERO, payload.clone());
        assert_eq!(env.into_payload(), payload);
    }
}
