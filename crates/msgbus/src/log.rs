//! Message capture for offline analysis.
//!
//! The paper's attacker performs "offline code/data analysis to infer the
//! safety constraints and parameters" (§III-B). [`MessageLog`] is the data
//! half of that: a record of all bus traffic that can be mined for topics,
//! rates and value ranges.

use serde::{Deserialize, Serialize};
use units::Tick;

use crate::{Envelope, Topic};

/// An append-only record of published messages.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MessageLog {
    entries: Vec<Envelope>,
}

impl MessageLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an envelope.
    pub fn record(&mut self, env: Envelope) {
        // adas-lint: allow(R13, reason = "opt-in message history — attached only when a test or tool asks for capture; unbounded growth is the feature, and the steady-state alloc gate runs without it")
        self.entries.push(env);
    }

    /// Number of captured messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all captured envelopes in publication order.
    pub fn iter(&self) -> impl Iterator<Item = &Envelope> {
        self.entries.iter()
    }

    /// Iterates over the envelopes of a single topic.
    pub fn topic(&self, topic: Topic) -> impl Iterator<Item = &Envelope> {
        self.entries.iter().filter(move |e| e.topic() == topic)
    }

    /// Returns the messages published in the tick range `[from, to)`.
    pub fn between(&self, from: Tick, to: Tick) -> impl Iterator<Item = &Envelope> {
        self.entries
            .iter()
            .filter(move |e| e.tick() >= from && e.tick() < to)
    }

    /// Count of messages per topic, in [`Topic::ALL`] order.
    pub fn topic_histogram(&self) -> Vec<(Topic, usize)> {
        Topic::ALL
            .into_iter()
            .map(|t| (t, self.topic(t).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CarState, GpsLocation};
    use crate::Payload;

    fn log_with(n: u64) -> MessageLog {
        let mut log = MessageLog::new();
        for i in 0..n {
            let payload = if i % 2 == 0 {
                Payload::GpsLocationExternal(GpsLocation::default())
            } else {
                Payload::CarState(CarState::default())
            };
            log.record(Envelope::new(i, Tick::new(i), payload));
        }
        log
    }

    #[test]
    fn len_and_empty() {
        assert!(MessageLog::new().is_empty());
        assert_eq!(log_with(6).len(), 6);
    }

    #[test]
    fn topic_filter() {
        let log = log_with(6);
        assert_eq!(log.topic(Topic::GpsLocationExternal).count(), 3);
        assert_eq!(log.topic(Topic::CarState).count(), 3);
        assert_eq!(log.topic(Topic::RadarState).count(), 0);
    }

    #[test]
    fn tick_range_is_half_open() {
        let log = log_with(10);
        let window: Vec<_> = log.between(Tick::new(2), Tick::new(5)).collect();
        assert_eq!(window.len(), 3);
        assert_eq!(window[0].tick(), Tick::new(2));
        assert_eq!(window[2].tick(), Tick::new(4));
    }

    #[test]
    fn histogram_covers_all_topics() {
        let log = log_with(4);
        let hist = log.topic_histogram();
        assert_eq!(hist.len(), Topic::ALL.len());
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4);
    }
}
