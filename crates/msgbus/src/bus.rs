//! The in-process publisher/subscriber bus.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use units::Tick;

use crate::{Envelope, MessageLog, Payload, Topic};

/// Maximum number of undrained messages a subscriber may buffer before the
/// oldest are discarded. Mirrors Cereal/ZMQ's conflate-or-drop behaviour and
/// bounds memory in long campaigns.
const SUBSCRIBER_QUEUE_CAP: usize = 4_096;

#[derive(Debug, Default)]
struct SubscriberQueue {
    messages: VecDeque<Envelope>,
    dropped: u64,
}

#[derive(Debug)]
struct SubEntry {
    topics: Vec<Topic>,
    queue: Arc<Mutex<SubscriberQueue>>,
}

#[derive(Debug, Default)]
struct BusInner {
    subs: Vec<SubEntry>,
    log: Option<MessageLog>,
    seq: u64,
    published_by_topic: [u64; Topic::COUNT],
}

/// The message bus. Cloning is cheap and all clones address the same bus.
///
/// Anyone holding a bus handle may subscribe to any topic — there is no
/// authentication, just like Cereal. This is the eavesdropping surface the
/// paper's attack exploits (§III-C).
///
/// # Examples
///
/// ```
/// use msgbus::{Bus, Topic, Payload};
/// use msgbus::schema::CarControl;
/// use units::Tick;
///
/// let bus = Bus::new();
/// let mut sub = bus.subscribe(&[Topic::CarControl]);
/// bus.publish(Tick::ZERO, Payload::CarControl(CarControl::default()));
/// assert_eq!(sub.drain().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bus {
    inner: Arc<Mutex<BusInner>>,
}

impl Bus {
    /// Creates a new, empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber for the given topics.
    ///
    /// Messages published after this call are queued for the subscriber;
    /// earlier traffic is not replayed (use [`Bus::enable_logging`] to
    /// capture history).
    pub fn subscribe(&self, topics: &[Topic]) -> Subscriber {
        let queue = Arc::new(Mutex::new(SubscriberQueue::default()));
        self.inner.lock().subs.push(SubEntry {
            topics: topics.to_vec(),
            queue: Arc::clone(&queue),
        });
        Subscriber { queue }
    }

    /// Publishes a payload, delivering it to every matching subscriber.
    ///
    /// Returns the bus-wide sequence number assigned to the message.
    pub fn publish(&self, tick: Tick, payload: Payload) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        let env = Envelope::new(seq, tick, payload);
        if let Some(log) = inner.log.as_mut() {
            log.record(env.clone());
        }
        let topic = env.topic();
        if let Some(count) = inner.published_by_topic.get_mut(topic.index()) {
            *count += 1;
        }
        for sub in &inner.subs {
            if sub.topics.contains(&topic) {
                let mut q = sub.queue.lock();
                if q.messages.len() >= SUBSCRIBER_QUEUE_CAP {
                    q.messages.pop_front();
                    q.dropped += 1;
                }
                q.messages.push_back(env.clone());
            }
        }
        seq
    }

    /// Starts recording every published message into an internal
    /// [`MessageLog`].
    pub fn enable_logging(&self) {
        let mut inner = self.inner.lock();
        if inner.log.is_none() {
            inner.log = Some(MessageLog::new());
        }
    }

    /// Stops logging and returns the captured log, if logging was enabled.
    pub fn take_log(&self) -> Option<MessageLog> {
        self.inner.lock().log.take()
    }

    /// Number of messages published so far.
    pub fn published_count(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Cumulative publish counts, indexed by [`Topic::index`].
    ///
    /// This is the bus-side envelope accounting the platform's flight
    /// recorder snapshots every tick; it is maintained unconditionally
    /// because the cost (one array increment per publish) is negligible
    /// next to the fan-out clones.
    pub fn published_by_topic(&self) -> [u64; Topic::COUNT] {
        self.inner.lock().published_by_topic
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subs.len()
    }
}

/// A receive handle returned by [`Bus::subscribe`].
#[derive(Debug)]
pub struct Subscriber {
    queue: Arc<Mutex<SubscriberQueue>>,
}

impl Subscriber {
    /// Removes and returns all queued messages, in publication order.
    pub fn drain(&mut self) -> Vec<Envelope> {
        self.queue.lock().messages.drain(..).collect()
    }

    /// Removes and returns the oldest queued message, if any.
    pub fn try_recv(&mut self) -> Option<Envelope> {
        self.queue.lock().messages.pop_front()
    }

    /// Number of messages waiting to be drained.
    pub fn pending(&self) -> usize {
        self.queue.lock().messages.len()
    }

    /// Number of messages discarded because the queue overflowed.
    pub fn dropped(&self) -> u64 {
        self.queue.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CarControl, CarState, GpsLocation, RadarState};
    use units::{Accel, Angle};

    fn gps() -> Payload {
        Payload::GpsLocationExternal(GpsLocation::default())
    }

    #[test]
    fn delivery_is_topic_filtered() {
        let bus = Bus::new();
        let mut gps_sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        let mut radar_sub = bus.subscribe(&[Topic::RadarState]);

        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::ZERO, Payload::RadarState(RadarState::default()));

        assert_eq!(gps_sub.drain().len(), 1);
        assert_eq!(radar_sub.drain().len(), 1);
    }

    #[test]
    fn multi_topic_subscription_receives_all() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal, Topic::CarState]);
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::new(1), Payload::CarState(CarState::default()));
        let msgs = sub.drain();
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].seq() < msgs[1].seq(), "publication order preserved");
    }

    #[test]
    fn subscribers_do_not_steal_from_each_other() {
        let bus = Bus::new();
        let mut a = bus.subscribe(&[Topic::CarControl]);
        let mut b = bus.subscribe(&[Topic::CarControl]);
        bus.publish(
            Tick::ZERO,
            Payload::CarControl(CarControl {
                accel: Accel::from_mps2(1.0),
                steer: Angle::ZERO,
            }),
        );
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1, "fan-out, not work-stealing");
    }

    #[test]
    fn no_replay_for_late_subscribers() {
        let bus = Bus::new();
        bus.publish(Tick::ZERO, gps());
        let mut late = bus.subscribe(&[Topic::GpsLocationExternal]);
        assert_eq!(late.drain().len(), 0);
    }

    #[test]
    fn queue_overflow_drops_oldest() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        for i in 0..(SUBSCRIBER_QUEUE_CAP as u64 + 10) {
            bus.publish(Tick::new(i), gps());
        }
        assert_eq!(sub.pending(), SUBSCRIBER_QUEUE_CAP);
        assert_eq!(sub.dropped(), 10);
        let msgs = sub.drain();
        // The 10 oldest were discarded.
        assert_eq!(msgs[0].tick(), Tick::new(10));
    }

    #[test]
    fn logging_captures_everything() {
        let bus = Bus::new();
        bus.enable_logging();
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::new(1), Payload::CarState(CarState::default()));
        let log = bus.take_log().expect("logging enabled");
        assert_eq!(log.len(), 2);
        assert!(bus.take_log().is_none(), "log can only be taken once");
    }

    #[test]
    fn counters() {
        let bus = Bus::new();
        assert_eq!(bus.published_count(), 0);
        assert_eq!(bus.subscriber_count(), 0);
        let _sub = bus.subscribe(&[Topic::ModelV2]);
        bus.publish(Tick::ZERO, gps());
        assert_eq!(bus.published_count(), 1);
        assert_eq!(bus.subscriber_count(), 1);
    }

    #[test]
    fn per_topic_counters_track_each_stream() {
        let bus = Bus::new();
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::new(1), Payload::CarState(CarState::default()));
        let counts = bus.published_by_topic();
        assert_eq!(counts[Topic::GpsLocationExternal.index()], 2);
        assert_eq!(counts[Topic::CarState.index()], 1);
        assert_eq!(counts.iter().sum::<u64>(), bus.published_count());
    }

    #[test]
    fn clones_share_state() {
        let bus = Bus::new();
        let bus2 = bus.clone();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        bus2.publish(Tick::ZERO, gps());
        assert_eq!(sub.drain().len(), 1);
    }

    #[test]
    fn concurrent_publish_is_safe() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let bus = bus.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        bus.publish(Tick::new(i), gps());
                    }
                });
            }
        });
        assert_eq!(bus.published_count(), 400);
        let msgs = sub.drain();
        assert_eq!(msgs.len(), 400);
        // Sequence numbers are unique and strictly increasing in queue order.
        for pair in msgs.windows(2) {
            assert!(pair[0].seq() < pair[1].seq());
        }
    }
}
