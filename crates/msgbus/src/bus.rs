//! The in-process publisher/subscriber bus.
//!
//! # Fan-out design
//!
//! Delivery is a cursor-based broadcast ring, not a queue-per-subscriber:
//! every published [`Envelope`] is appended **once** to a shared ring and
//! each [`Subscriber`] holds a read cursor into it. `publish` therefore
//! performs zero payload clones regardless of how many subscribers match —
//! the clone happens lazily, per message actually read, inside
//! [`Subscriber::drain_into`]. Slots are reclaimed as soon as every live
//! subscriber's cursor has moved past them, so in lock-step operation (all
//! subscribers drained every tick) the ring stays a handful of messages
//! long and steady-state publishing allocates nothing.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use units::Tick;

use crate::{Envelope, MessageLog, Payload, Topic};

/// Maximum number of undrained *matching* messages a subscriber may lag
/// behind the head before the oldest are discarded for it. Mirrors
/// Cereal/ZMQ's conflate-or-drop behaviour and bounds per-subscriber backlog
/// in long campaigns; the bookkeeping (drop-oldest, per-subscriber dropped
/// counter) is identical to the historical queue-per-subscriber design.
const SUBSCRIBER_QUEUE_CAP: usize = 4_096;

// The topic-filter bitmask below holds one bit per topic.
const _: () = assert!(Topic::COUNT <= 64, "TopicMask is a u64 bitmask");

/// One bit per topic, for O(1) subscription filtering without a `Vec` walk.
fn topic_bit(topic: Topic) -> u64 {
    // `Topic::index` is dense and `< Topic::COUNT <= 64` (asserted above).
    1u64 << (topic.index() as u32 % 64)
}

/// Per-subscriber read state over the shared ring.
#[derive(Debug)]
struct SubState {
    /// Bitmask of subscribed topics (see [`topic_bit`]).
    mask: u64,
    /// Sequence number of the next message this subscriber will examine.
    /// Normalised to the bus head whenever nothing matching is pending, so
    /// ring eviction is never held up by an idle subscriber.
    cursor: u64,
    /// Matching, undrained messages in `[cursor, head)`.
    pending: usize,
    /// Matching messages discarded because the subscriber lagged past
    /// [`SUBSCRIBER_QUEUE_CAP`].
    dropped: u64,
    /// Set when the `Subscriber` handle is dropped; a closed entry neither
    /// receives messages nor holds up eviction.
    closed: bool,
}

impl SubState {
    fn matches(&self, bit: u64) -> bool {
        self.mask & bit != 0
    }
}

#[derive(Debug, Default)]
struct BusInner {
    /// The shared broadcast ring. Invariant: element `i` carries sequence
    /// number `front_seq + i`, and when the ring is empty
    /// `front_seq == seq`.
    ring: VecDeque<Envelope>,
    /// Sequence number of `ring.front()`.
    front_seq: u64,
    /// Next sequence number to assign (the bus head).
    seq: u64,
    subs: Vec<SubState>,
    log: Option<MessageLog>,
    published_by_topic: [u64; Topic::COUNT],
}

impl BusInner {
    /// Pops every ring slot all live subscribers have read past.
    fn evict(&mut self) {
        let min_cursor = self
            .subs
            .iter()
            .filter(|s| !s.closed)
            .map(|s| s.cursor)
            .min()
            .unwrap_or(self.seq);
        while self.front_seq < min_cursor && self.ring.pop_front().is_some() {
            self.front_seq += 1;
        }
    }
}

/// Advances `sub` past its oldest pending matching message, counting it as
/// dropped — the conflate-or-drop step when the subscriber exceeds
/// [`SUBSCRIBER_QUEUE_CAP`].
fn drop_oldest(ring: &VecDeque<Envelope>, front_seq: u64, sub: &mut SubState) {
    let start = sub.cursor.saturating_sub(front_seq) as usize;
    for (off, env) in ring.iter().enumerate().skip(start) {
        if sub.matches(topic_bit(env.topic())) {
            sub.dropped += 1;
            sub.pending = sub.pending.saturating_sub(1);
            sub.cursor = front_seq + off as u64 + 1;
            return;
        }
    }
    // Defensive: `pending` said something matched but nothing did; resync.
    sub.pending = 0;
    sub.cursor = front_seq + ring.len() as u64;
}

/// The message bus. Cloning is cheap and all clones address the same bus.
///
/// Anyone holding a bus handle may subscribe to any topic — there is no
/// authentication, just like Cereal. This is the eavesdropping surface the
/// paper's attack exploits (§III-C).
///
/// # Examples
///
/// ```
/// use msgbus::{Bus, Topic, Payload};
/// use msgbus::schema::CarControl;
/// use units::Tick;
///
/// let bus = Bus::new();
/// let mut sub = bus.subscribe(&[Topic::CarControl]);
/// bus.publish(Tick::ZERO, Payload::CarControl(CarControl::default()));
/// assert_eq!(sub.drain().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bus {
    inner: Arc<Mutex<BusInner>>,
}

impl Bus {
    /// Creates a new, empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber for the given topics.
    ///
    /// Messages published after this call are queued for the subscriber;
    /// earlier traffic is not replayed (use [`Bus::enable_logging`] to
    /// capture history).
    pub fn subscribe(&self, topics: &[Topic]) -> Subscriber {
        let mut inner = self.inner.lock();
        let mask = topics.iter().fold(0u64, |m, &t| m | topic_bit(t));
        let cursor = inner.seq;
        // adas-lint: allow(R14, reason = "subscriber registration at wiring time — the lock provides exclusivity, not a parallel result merge; subscription order is single-threaded program order")
        inner.subs.push(SubState {
            mask,
            cursor,
            pending: 0,
            dropped: 0,
            closed: false,
        });
        Subscriber {
            inner: Arc::clone(&self.inner),
            id: inner.subs.len().saturating_sub(1),
        }
    }

    /// Publishes a payload, delivering it to every matching subscriber.
    ///
    /// Cost model: one ring append and one cursor update per subscriber —
    /// **zero** `Envelope` clones regardless of subscriber count (the only
    /// clone happens when [`Bus::enable_logging`] is active). Subscribers
    /// copy a message out of the ring only when they drain it.
    ///
    /// Returns the bus-wide sequence number assigned to the message.
    pub fn publish(&self, tick: Tick, payload: Payload) -> u64 {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let seq = inner.seq;
        inner.seq += 1;
        let head = inner.seq;
        let env = Envelope::new(seq, tick, payload);
        if let Some(log) = inner.log.as_mut() {
            log.record(env.clone());
        }
        let topic = env.topic();
        if let Some(count) = inner.published_by_topic.get_mut(topic.index()) {
            *count += 1;
        }
        let bit = topic_bit(topic);
        let mut overflowed = false;
        for sub in inner.subs.iter_mut().filter(|s| !s.closed) {
            if sub.matches(bit) {
                if sub.pending == 0 {
                    sub.cursor = seq;
                }
                sub.pending += 1;
                overflowed |= sub.pending > SUBSCRIBER_QUEUE_CAP;
            } else if sub.pending == 0 {
                // Nothing pending for this subscriber between its cursor and
                // the head: advance it past the new message so it never
                // pins the ring.
                sub.cursor = head;
            }
        }
        // adas-lint: allow(R13, reason = "bounded ring — push_back grows only to the high-water capacity during warm-up, then the drop-oldest policy recycles slots; witnessed by the counting-allocator gate")
        inner.ring.push_back(env);
        if overflowed {
            let BusInner {
                ring,
                front_seq,
                subs,
                ..
            } = inner;
            for sub in subs
                .iter_mut()
                .filter(|s| !s.closed && s.pending > SUBSCRIBER_QUEUE_CAP)
            {
                drop_oldest(ring, *front_seq, sub);
            }
        }
        inner.evict();
        seq
    }

    /// Starts recording every published message into an internal
    /// [`MessageLog`].
    pub fn enable_logging(&self) {
        let mut inner = self.inner.lock();
        if inner.log.is_none() {
            inner.log = Some(MessageLog::new());
        }
    }

    /// Stops logging and returns the captured log, if logging was enabled.
    pub fn take_log(&self) -> Option<MessageLog> {
        self.inner.lock().log.take()
    }

    /// Number of messages published so far.
    pub fn published_count(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Cumulative publish counts, indexed by [`Topic::index`].
    ///
    /// This is the bus-side envelope accounting the platform's flight
    /// recorder snapshots every tick; it is maintained unconditionally
    /// because the cost (one array increment per publish) is negligible.
    pub fn published_by_topic(&self) -> [u64; Topic::COUNT] {
        self.inner.lock().published_by_topic
    }

    /// Number of live (undropped) subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subs.iter().filter(|s| !s.closed).count()
    }

    /// Number of messages currently retained in the shared ring — the
    /// high-water mark every undrained subscriber contributes to. Exposed
    /// for tests and capacity diagnostics.
    pub fn ring_len(&self) -> usize {
        self.inner.lock().ring.len()
    }
}

/// A receive handle returned by [`Bus::subscribe`].
///
/// Dropping the handle unregisters the subscription, releasing any ring
/// slots it was holding.
#[derive(Debug)]
pub struct Subscriber {
    inner: Arc<Mutex<BusInner>>,
    id: usize,
}

impl Subscriber {
    /// Removes and returns all queued messages, in publication order.
    ///
    /// Allocates a fresh `Vec` per call; hot loops should hold a buffer and
    /// use [`Subscriber::drain_into`] instead.
    pub fn drain(&mut self) -> Vec<Envelope> {
        // adas-lint: allow(R13, reason = "allocating convenience wrapper — hot loops hold a buffer and use drain_into")
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Clears `buf` and fills it with all queued messages, in publication
    /// order, returning how many were drained.
    ///
    /// The buffer's capacity is reused across calls, so a subscriber that is
    /// drained every tick into the same buffer allocates only until the
    /// buffer has grown to the steady-state message rate — after that the
    /// drain path is allocation-free apart from non-`Copy` payload clones
    /// (and every payload on the sensor/control topics is plain data).
    pub fn drain_into(&mut self, buf: &mut Vec<Envelope>) -> usize {
        buf.clear();
        let mut guard = self.inner.lock();
        let BusInner {
            ring,
            front_seq,
            seq,
            subs,
            ..
        } = &mut *guard;
        let head = *seq;
        if let Some(sub) = subs.get_mut(self.id) {
            if sub.pending > 0 {
                let start = sub.cursor.saturating_sub(*front_seq) as usize;
                for env in ring.iter().skip(start) {
                    if sub.matches(topic_bit(env.topic())) {
                        // adas-lint: allow(R14, reason = "per-subscriber FIFO drain into the caller's own buffer — order is publication order fixed by the ring, not completion order")
                        buf.push(env.clone());
                    }
                }
            }
            sub.pending = 0;
            sub.cursor = head;
        }
        guard.evict();
        buf.len()
    }

    /// Removes and returns the oldest queued message, if any.
    pub fn try_recv(&mut self) -> Option<Envelope> {
        let mut guard = self.inner.lock();
        let BusInner {
            ring,
            front_seq,
            seq,
            subs,
            ..
        } = &mut *guard;
        let head = *seq;
        let mut found = None;
        if let Some(sub) = subs.get_mut(self.id) {
            if sub.pending > 0 {
                let start = sub.cursor.saturating_sub(*front_seq) as usize;
                for (off, env) in ring.iter().enumerate().skip(start) {
                    if sub.matches(topic_bit(env.topic())) {
                        found = Some(env.clone());
                        sub.pending = sub.pending.saturating_sub(1);
                        sub.cursor = *front_seq + off as u64 + 1;
                        break;
                    }
                }
            }
            if sub.pending == 0 {
                sub.cursor = head;
            }
        }
        guard.evict();
        found
    }

    /// Number of messages waiting to be drained.
    pub fn pending(&self) -> usize {
        self.inner
            .lock()
            .subs
            .get(self.id)
            .map_or(0, |s| s.pending)
    }

    /// Number of messages discarded because the subscriber's backlog
    /// overflowed [`SUBSCRIBER_QUEUE_CAP`].
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .subs
            .get(self.id)
            .map_or(0, |s| s.dropped)
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        let mut guard = self.inner.lock();
        let head = guard.seq;
        if let Some(sub) = guard.subs.get_mut(self.id) {
            sub.closed = true;
            sub.mask = 0;
            sub.pending = 0;
            sub.cursor = head;
        }
        guard.evict();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CarControl, CarState, GpsLocation, RadarState};
    use units::{Accel, Angle};

    fn gps() -> Payload {
        Payload::GpsLocationExternal(GpsLocation::default())
    }

    #[test]
    fn delivery_is_topic_filtered() {
        let bus = Bus::new();
        let mut gps_sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        let mut radar_sub = bus.subscribe(&[Topic::RadarState]);

        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::ZERO, Payload::RadarState(RadarState::default()));

        assert_eq!(gps_sub.drain().len(), 1);
        assert_eq!(radar_sub.drain().len(), 1);
    }

    #[test]
    fn multi_topic_subscription_receives_all() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal, Topic::CarState]);
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::new(1), Payload::CarState(CarState::default()));
        let msgs = sub.drain();
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].seq() < msgs[1].seq(), "publication order preserved");
    }

    #[test]
    fn subscribers_do_not_steal_from_each_other() {
        let bus = Bus::new();
        let mut a = bus.subscribe(&[Topic::CarControl]);
        let mut b = bus.subscribe(&[Topic::CarControl]);
        bus.publish(
            Tick::ZERO,
            Payload::CarControl(CarControl {
                accel: Accel::from_mps2(1.0),
                steer: Angle::ZERO,
            }),
        );
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1, "fan-out, not work-stealing");
    }

    #[test]
    fn no_replay_for_late_subscribers() {
        let bus = Bus::new();
        bus.publish(Tick::ZERO, gps());
        let mut late = bus.subscribe(&[Topic::GpsLocationExternal]);
        assert_eq!(late.drain().len(), 0);
    }

    #[test]
    fn queue_overflow_drops_oldest() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        for i in 0..(SUBSCRIBER_QUEUE_CAP as u64 + 10) {
            bus.publish(Tick::new(i), gps());
        }
        assert_eq!(sub.pending(), SUBSCRIBER_QUEUE_CAP);
        assert_eq!(sub.dropped(), 10);
        let msgs = sub.drain();
        // The 10 oldest were discarded.
        assert_eq!(msgs[0].tick(), Tick::new(10));
    }

    #[test]
    fn overflow_bookkeeping_counts_only_matching_messages() {
        // Interleave a foreign topic: drops must count only the subscribed
        // stream, exactly like the old queue-per-subscriber design.
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        let mut all = bus.subscribe(&[Topic::GpsLocationExternal, Topic::CarState]);
        for i in 0..(SUBSCRIBER_QUEUE_CAP as u64 + 5) {
            bus.publish(Tick::new(i), gps());
            bus.publish(Tick::new(i), Payload::CarState(CarState::default()));
        }
        assert_eq!(sub.pending(), SUBSCRIBER_QUEUE_CAP);
        assert_eq!(sub.dropped(), 5);
        let msgs = sub.drain();
        assert_eq!(msgs[0].tick(), Tick::new(5), "5 oldest GPS dropped");
        assert!(msgs.iter().all(|m| m.topic() == Topic::GpsLocationExternal));
        // The two-topic subscriber saw twice the traffic, dropped twice as
        // much, and retains an interleaved window ending at the head.
        assert_eq!(all.pending(), SUBSCRIBER_QUEUE_CAP);
        let msgs = all.drain();
        assert_eq!(msgs.len(), SUBSCRIBER_QUEUE_CAP);
        assert!(msgs.windows(2).all(|p| p[0].seq() < p[1].seq()));
    }

    #[test]
    fn drain_into_reuses_the_buffer_and_clears_stale_contents() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        let mut buf = Vec::new();
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::new(1), gps());
        assert_eq!(sub.drain_into(&mut buf), 2);
        let cap = buf.capacity();
        // Next tick: fewer messages; stale contents must not survive.
        bus.publish(Tick::new(2), gps());
        assert_eq!(sub.drain_into(&mut buf), 1);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].tick(), Tick::new(2));
        assert_eq!(buf.capacity(), cap, "capacity is reused, not reallocated");
        // Empty drain leaves an empty buffer.
        assert_eq!(sub.drain_into(&mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn ring_is_reclaimed_once_all_subscribers_drain() {
        let bus = Bus::new();
        let mut a = bus.subscribe(&[Topic::GpsLocationExternal]);
        let mut b = bus.subscribe(&[Topic::GpsLocationExternal]);
        for i in 0..10 {
            bus.publish(Tick::new(i), gps());
        }
        assert_eq!(bus.ring_len(), 10, "both subscribers still pending");
        a.drain();
        assert_eq!(bus.ring_len(), 10, "b still pins the ring");
        b.drain();
        assert_eq!(bus.ring_len(), 0, "fully drained ring is empty");
    }

    #[test]
    fn unsubscribed_topics_do_not_accumulate() {
        // Messages nobody listens to must not grow the ring: the lock-step
        // harness publishes carControl/controlsState every tick even when
        // no attacker taps them.
        let bus = Bus::new();
        let _sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        for i in 0..100 {
            bus.publish(Tick::new(i), Payload::CarState(CarState::default()));
        }
        assert_eq!(bus.ring_len(), 0);
    }

    #[test]
    fn dropping_a_subscriber_releases_its_backlog() {
        let bus = Bus::new();
        let lazy = bus.subscribe(&[Topic::GpsLocationExternal]);
        for i in 0..50 {
            bus.publish(Tick::new(i), gps());
        }
        assert_eq!(bus.ring_len(), 50);
        assert_eq!(bus.subscriber_count(), 1);
        drop(lazy);
        assert_eq!(bus.subscriber_count(), 0);
        assert_eq!(bus.ring_len(), 0, "dropped handle no longer pins slots");
    }

    #[test]
    fn try_recv_pops_in_order_and_skips_foreign_topics() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::ZERO, Payload::CarState(CarState::default()));
        bus.publish(Tick::new(1), gps());
        let first = sub.try_recv().expect("first gps");
        assert_eq!(first.tick(), Tick::ZERO);
        assert_eq!(sub.pending(), 1);
        let second = sub.try_recv().expect("second gps");
        assert_eq!(second.tick(), Tick::new(1));
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn logging_captures_everything() {
        let bus = Bus::new();
        bus.enable_logging();
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::new(1), Payload::CarState(CarState::default()));
        let log = bus.take_log().expect("logging enabled");
        assert_eq!(log.len(), 2);
        assert!(bus.take_log().is_none(), "log can only be taken once");
    }

    #[test]
    fn counters() {
        let bus = Bus::new();
        assert_eq!(bus.published_count(), 0);
        assert_eq!(bus.subscriber_count(), 0);
        let _sub = bus.subscribe(&[Topic::ModelV2]);
        bus.publish(Tick::ZERO, gps());
        assert_eq!(bus.published_count(), 1);
        assert_eq!(bus.subscriber_count(), 1);
    }

    #[test]
    fn per_topic_counters_track_each_stream() {
        let bus = Bus::new();
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::ZERO, gps());
        bus.publish(Tick::new(1), Payload::CarState(CarState::default()));
        let counts = bus.published_by_topic();
        assert_eq!(counts[Topic::GpsLocationExternal.index()], 2);
        assert_eq!(counts[Topic::CarState.index()], 1);
        assert_eq!(counts.iter().sum::<u64>(), bus.published_count());
    }

    #[test]
    fn clones_share_state() {
        let bus = Bus::new();
        let bus2 = bus.clone();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        bus2.publish(Tick::ZERO, gps());
        assert_eq!(sub.drain().len(), 1);
    }

    #[test]
    fn concurrent_publish_is_safe() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let bus = bus.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        bus.publish(Tick::new(i), gps());
                    }
                });
            }
        });
        assert_eq!(bus.published_count(), 400);
        let msgs = sub.drain();
        assert_eq!(msgs.len(), 400);
        // Sequence numbers are unique and strictly increasing in queue order.
        for pair in msgs.windows(2) {
            assert!(pair[0].seq() < pair[1].seq());
        }
    }

    #[test]
    fn concurrent_drain_while_publishing_loses_nothing() {
        // A reader draining mid-stream must see every message exactly once
        // across its drains, in order — the multi-threaded safety property
        // of the old design, preserved by the ring.
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::GpsLocationExternal]);
        let mut seen = Vec::new();
        std::thread::scope(|s| {
            let writer = bus.clone();
            s.spawn(move || {
                for i in 0..500 {
                    writer.publish(Tick::new(i), gps());
                }
            });
            let mut buf = Vec::new();
            loop {
                sub.drain_into(&mut buf);
                seen.extend(buf.iter().map(Envelope::seq));
                if seen.len() >= 500 {
                    break;
                }
                std::thread::yield_now();
            }
        });
        assert_eq!(seen.len(), 500);
        for pair in seen.windows(2) {
            assert!(pair[0] < pair[1], "strictly increasing, no dup or loss");
        }
    }
}
