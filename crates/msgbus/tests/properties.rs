//! Property-based tests for the bus's delivery semantics.

use msgbus::schema::{CarState, GpsLocation, LaneModel, RadarState};
use msgbus::{Bus, Payload, Topic};
use proptest::prelude::*;
use units::{Angle, Speed, Tick};

fn payload_for(idx: u8) -> Payload {
    match idx % 4 {
        0 => Payload::GpsLocationExternal(GpsLocation {
            speed: Speed::from_mps(idx as f64),
            bearing: Angle::ZERO,
        }),
        1 => Payload::ModelV2(LaneModel::default()),
        2 => Payload::RadarState(RadarState::default()),
        _ => Payload::CarState(CarState::default()),
    }
}

proptest! {
    /// Messages arrive in publication order with strictly increasing
    /// sequence numbers, regardless of the publish pattern.
    #[test]
    fn delivery_preserves_order(kinds in proptest::collection::vec(0u8..4, 1..200)) {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&Topic::ALL);
        for (i, k) in kinds.iter().enumerate() {
            bus.publish(Tick::new(i as u64), payload_for(*k));
        }
        let msgs = sub.drain();
        prop_assert_eq!(msgs.len(), kinds.len());
        for (i, pair) in msgs.windows(2).enumerate() {
            prop_assert!(pair[0].seq() < pair[1].seq(), "at {i}");
            prop_assert!(pair[0].tick() <= pair[1].tick());
        }
    }

    /// A topic-filtered subscriber receives exactly the matching subset.
    #[test]
    fn filtering_is_exact(kinds in proptest::collection::vec(0u8..4, 0..200)) {
        let bus = Bus::new();
        let mut gps_only = bus.subscribe(&[Topic::GpsLocationExternal]);
        let mut all = bus.subscribe(&Topic::ALL);
        for k in &kinds {
            bus.publish(Tick::ZERO, payload_for(*k));
        }
        let expected = kinds.iter().filter(|k| *k % 4 == 0).count();
        prop_assert_eq!(gps_only.drain().len(), expected);
        prop_assert_eq!(all.drain().len(), kinds.len());
    }

    /// Fan-out duplicates every message to every subscriber; nothing is
    /// stolen or lost below the queue cap.
    #[test]
    fn fanout_is_lossless(n_subs in 1usize..6, n_msgs in 0u64..300) {
        let bus = Bus::new();
        let mut subs: Vec<_> = (0..n_subs)
            .map(|_| bus.subscribe(&[Topic::CarState]))
            .collect();
        for i in 0..n_msgs {
            bus.publish(Tick::new(i), Payload::CarState(CarState::default()));
        }
        for s in &mut subs {
            prop_assert_eq!(s.drain().len() as u64, n_msgs);
            prop_assert_eq!(s.dropped(), 0);
        }
    }
}
