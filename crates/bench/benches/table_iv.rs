//! Regenerates the paper's **Table IV**: "Attack strategy comparisons with
//! an alert driver" — No-Attacks baseline plus the four strategies, each
//! over the full scenario × gap × repetition × attack-type matrix.
//!
//! Paper reference values (1,440 sims per strategy, 14,400 for
//! Random-ST+DUR):
//!
//! | Strategy      | Alerts | Hazards | Accidents | Haz&noAlert | Inv/s | TTH       |
//! |---------------|--------|---------|-----------|-------------|-------|-----------|
//! | No Attacks    | 0.1%   | 0       | 0         | 0           | 0.46  | –         |
//! | Random-ST+DUR | 22.6%  | 39.8%   | 22.9%     | 21.4%       | 1.03  | 1.61±1.96 |
//! | Random-ST     | 24.0%  | 53.5%   | 35.8%     | 32.9%       | 0.68  | 1.49±0.73 |
//! | Random-DUR    | 14.6%  | 26.9%   | 23.1%     | 15.9%       | 0.46  | 1.92±1.17 |
//! | Context-Aware | 0.3%   | 83.4%   | 44.5%     | 83.1%       | 0.66  | 2.43±1.29 |
//!
//! Run with `REPRO_SCALE=10` for a quick (≈ 1/10-size) pass.

use attack_core::StrategyKind;
use bench::{fmt_tth, scale_divisor, scaled_reps, write_artifact};
use driver_model::DriverConfig;
use platform::experiment::{plan_no_attack_campaign, run_full_campaign, run_parallel, CampaignConfig};
use platform::metrics::StrategyAggregate;
use platform::tables::render_table_iv;

fn main() {
    let reps = scaled_reps();
    println!(
        "Table IV campaign: {} reps/cell (scale 1/{})",
        reps,
        scale_divisor()
    );

    let mut rows = Vec::new();

    // Baseline: no attacks.
    let t0 = std::time::Instant::now();
    let baseline = run_parallel(&plan_no_attack_campaign(reps, 0x7AB1E4, DriverConfig::alert()));
    rows.push(StrategyAggregate::from_results("No Attacks", &baseline));
    println!("  no-attack campaign: {} sims in {:.1?}", baseline.len(), t0.elapsed());

    for strategy in StrategyKind::ALL {
        let t0 = std::time::Instant::now();
        let mut cfg = CampaignConfig::paper(strategy);
        cfg.reps = reps;
        let results = run_full_campaign(&cfg);
        rows.push(StrategyAggregate::from_results(strategy.label(), &results));
        println!(
            "  {} campaign: {} sims in {:.1?}",
            strategy.label(),
            results.len(),
            t0.elapsed()
        );
    }

    let table = render_table_iv(&rows);
    println!("\n{table}");
    for r in &rows {
        println!(
            "  {}: TTH {}   FCW events: {}",
            r.label,
            fmt_tth(&r.tth),
            r.fcw_events
        );
    }
    write_artifact("table_iv.txt", &table);
}
