//! Regenerates the paper's **Table V**: "Context-aware attack with or
//! without strategic value corruption and with an alert driver" — per attack
//! type, with the driver-attribution columns (prevented / new hazards)
//! computed from seed-paired campaigns with and without an attentive driver.
//!
//! Paper reference values (240 sims per attack type per mode):
//!
//! *Without* strategic value corruption (fixed values at the software
//! limits): total alerts 9.9%, hazards 76.6%, accidents 55.0%, TTH
//! 2.04±1.10; the driver prevents 36.8% of hazards but introduces 16.4% new
//! ones.
//!
//! *With* strategic value corruption: total alerts 0.3%, hazards 83.4%,
//! accidents 44.5%, TTH 2.43±1.29, and essentially nothing is prevented —
//! the values evade the driver's anomaly perception entirely.

use attack_core::{AttackType, StrategyKind, ValueMode};
use bench::{fmt_tth, scaled_reps, write_artifact};
use driver_model::DriverConfig;
use platform::experiment::{plan_attack_campaign, run_parallel, CampaignConfig};
use platform::metrics::PairedAggregate;
use platform::tables::{render_table_v, table_v_total};

fn run_mode(mode: ValueMode, reps: u32) -> Vec<PairedAggregate> {
    let mut rows = Vec::new();
    for attack_type in AttackType::ALL {
        let mut cfg = CampaignConfig::paper(StrategyKind::ContextAware);
        cfg.value_mode = mode;
        cfg.reps = reps;

        // With an alert driver…
        let with_specs = plan_attack_campaign(&cfg, attack_type);
        let with_driver = run_parallel(&with_specs);

        // …and the seed-paired ablation without one.
        let mut no_driver_specs = with_specs;
        for s in &mut no_driver_specs {
            s.driver = DriverConfig::inattentive();
        }
        let no_driver = run_parallel(&no_driver_specs);

        rows.push(PairedAggregate::from_pairs(
            attack_type.label(),
            &with_driver,
            &no_driver,
        ));
    }
    rows.push(table_v_total(&rows));
    rows
}

fn main() {
    let reps = scaled_reps();
    println!("Table V campaign: {reps} reps/cell, paired driver ablation\n");

    let t0 = std::time::Instant::now();
    let fixed = run_mode(ValueMode::Fixed, reps);
    let fixed_table = render_table_v("WITHOUT strategic value corruption (fixed limits)", &fixed);
    println!("{fixed_table}");

    let strategic = run_mode(ValueMode::Strategic, reps);
    let strategic_table =
        render_table_v("WITH strategic value corruption (Eq. 1-3)", &strategic);
    println!("{strategic_table}");

    for rows in [&fixed, &strategic] {
        let total = rows.last().expect("total row");
        println!(
            "  {}: hazards {}/{} with driver vs {} without; prevented {}, new {}, TTH {}",
            total.label,
            total.hazards,
            total.sims,
            total.hazards_no_driver,
            total.prevented_hazards,
            total.new_hazards,
            fmt_tth(&total.tth),
        );
    }
    println!("\ntotal wall-clock {:.1?}", t0.elapsed());
    write_artifact(
        "table_v.txt",
        &format!("{fixed_table}\n{strategic_table}"),
    );
}
