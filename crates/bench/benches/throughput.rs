//! Campaign throughput benchmark: sims/sec and ticks/sec, serial vs.
//! parallel, written to `BENCH_throughput.json` at the repo root so the
//! perf trajectory is tracked PR over PR.
//!
//! The workload is a scaled Context-Aware campaign (the paper's headline
//! strategy) over all six attack types — the exact hot path the msgbus
//! ring, the allocation-free tick loop and the batched campaign runner
//! optimize. Serial runs through the single-worker fast path of
//! `run_parallel_map_with`; parallel uses `REPRO_WORKERS` (or all cores).
//!
//! Run with e.g. `REPRO_SCALE=20 cargo bench -p bench --bench throughput`.
//! No wall-clock gating anywhere: the JSON records `cores` and `workers`
//! so speedup expectations (≥ 2× on ≥ 4 cores) stay machine-checkable
//! without failing on small CI boxes.

use attack_core::StrategyKind;
use bench::{scale_divisor, scaled_reps, write_artifact};
use platform::experiment::{
    plan_attack_campaign, run_parallel_with, CampaignConfig, RunnerConfig,
};
use platform::SimResult;
use units::STEPS_PER_SIM;

/// One timed pass over the work list.
struct Pass {
    seconds: f64,
    sims_per_sec: f64,
    ticks_per_sec: f64,
}

fn timed(cfg: RunnerConfig, specs: &[platform::experiment::RunSpec]) -> (Pass, Vec<SimResult>) {
    let t0 = std::time::Instant::now();
    let results = run_parallel_with(cfg, specs);
    let seconds = t0.elapsed().as_secs_f64().max(1e-9);
    let sims = specs.len() as f64;
    let ticks = sims * STEPS_PER_SIM as f64;
    (
        Pass {
            seconds,
            sims_per_sec: sims / seconds,
            ticks_per_sec: ticks / seconds,
        },
        results,
    )
}

fn pass_json(p: &Pass) -> String {
    format!(
        "{{\"seconds\": {:.3}, \"sims_per_sec\": {:.2}, \"ticks_per_sec\": {:.0}}}",
        p.seconds, p.sims_per_sec, p.ticks_per_sec
    )
}

fn main() {
    let reps = scaled_reps();
    let mut cfg = CampaignConfig::paper(StrategyKind::ContextAware);
    cfg.reps = reps;
    let specs: Vec<_> = attack_core::AttackType::ALL
        .into_iter()
        .flat_map(|t| plan_attack_campaign(&cfg, t))
        .collect();
    println!(
        "throughput: Context-Aware campaign, {} sims x {} ticks (scale 1/{})",
        specs.len(),
        STEPS_PER_SIM,
        scale_divisor()
    );

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = RunnerConfig::default().worker_count(specs.len());

    let (serial, serial_results) = timed(RunnerConfig::with_workers(1), &specs);
    println!(
        "  serial:   {:.2}s  {:.1} sims/s  {:.0} ticks/s",
        serial.seconds, serial.sims_per_sec, serial.ticks_per_sec
    );
    let (parallel, parallel_results) = timed(RunnerConfig::default(), &specs);
    println!(
        "  parallel: {:.2}s  {:.1} sims/s  {:.0} ticks/s  ({workers} workers, {cores} cores)",
        parallel.seconds, parallel.sims_per_sec, parallel.ticks_per_sec
    );

    let speedup = serial.seconds / parallel.seconds;
    let identical = serial_results == parallel_results;
    println!("  speedup: {speedup:.2}x  results identical: {identical}");
    assert!(identical, "parallel results must match serial bit for bit");

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"campaign\": \"context_aware_all_types\",\n  \
         \"scale_divisor\": {},\n  \"reps_per_cell\": {},\n  \"sims\": {},\n  \
         \"ticks_per_sim\": {},\n  \"cores\": {},\n  \"workers\": {},\n  \
         \"serial\": {},\n  \"parallel\": {},\n  \"speedup\": {:.2},\n  \
         \"results_identical\": {}\n}}\n",
        scale_divisor(),
        reps,
        specs.len(),
        STEPS_PER_SIM,
        cores,
        workers,
        pass_json(&serial),
        pass_json(&parallel),
        speedup,
        identical
    );

    // The tracked copy lives at the repo root (BENCH_throughput.json);
    // write_artifact drops a second copy under target/paper-artifacts/.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_throughput.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    write_artifact("BENCH_throughput.json", &json);
}
