//! Campaign throughput benchmark: sims/sec and ticks/sec, serial vs.
//! parallel vs. batched, written to `BENCH_throughput.json` at the repo
//! root so the perf trajectory is tracked PR over PR.
//!
//! The workload is a scaled Context-Aware campaign (the paper's headline
//! strategy) over all six attack types — the exact hot path the msgbus
//! ring, the allocation-free tick loop and the batched campaign runner
//! optimize. Serial runs through the single-worker fast path of the
//! campaign runner; parallel fans out over the persistent worker pool
//! (`REPRO_WORKERS` or all cores); batched steps every lane in lockstep
//! through one single-threaded [`BatchHarness`], the per-core ceiling.
//! All three passes must produce bit-identical results.
//!
//! Run with e.g. `REPRO_SCALE=20 cargo bench -p bench --bench throughput`.
//! No wall-clock gating anywhere: the JSON records `cores` and `workers`
//! so speedup expectations (≥ 2× on ≥ 4 cores) stay machine-checkable
//! without failing on small CI boxes.

use attack_core::StrategyKind;
use bench::{scale_divisor, scaled_reps, write_artifact};
use platform::experiment::{
    detected_cores, plan_attack_campaign, run_parallel_with, CampaignConfig, RunnerConfig, RunSpec,
};
use platform::{BatchHarness, SimResult, TraceConfig};
use units::STEPS_PER_SIM;

/// One timed pass over the work list.
struct Pass {
    seconds: f64,
    sims_per_sec: f64,
    ticks_per_sec: f64,
}

fn timed(cfg: RunnerConfig, specs: &[RunSpec]) -> (Pass, Vec<SimResult>) {
    let t0 = std::time::Instant::now();
    let results = run_parallel_with(cfg, specs);
    let seconds = t0.elapsed().as_secs_f64().max(1e-9);
    let sims = specs.len() as f64;
    let ticks = sims * STEPS_PER_SIM as f64;
    (
        Pass {
            seconds,
            sims_per_sec: sims / seconds,
            ticks_per_sec: ticks / seconds,
        },
        results,
    )
}

/// One timed pass over the work list as a single SoA batch, including the
/// batch build — the apples-to-apples counterpart of `timed`, which also
/// constructs its harnesses inside the window.
fn timed_batched(specs: &[RunSpec]) -> (Pass, Vec<SimResult>, usize, usize) {
    let t0 = std::time::Instant::now();
    let mut batch = BatchHarness::new();
    for s in specs {
        batch.admit(s.harness_config(TraceConfig::disabled()));
    }
    let (fast, exact) = (batch.fast_lanes(), batch.exact_lanes());
    let results = batch.run();
    let seconds = t0.elapsed().as_secs_f64().max(1e-9);
    let sims = specs.len() as f64;
    let ticks = sims * STEPS_PER_SIM as f64;
    (
        Pass {
            seconds,
            sims_per_sec: sims / seconds,
            ticks_per_sec: ticks / seconds,
        },
        results,
        fast,
        exact,
    )
}

fn pass_json(p: &Pass) -> String {
    format!(
        "{{\"seconds\": {:.3}, \"sims_per_sec\": {:.2}, \"ticks_per_sec\": {:.0}}}",
        p.seconds, p.sims_per_sec, p.ticks_per_sec
    )
}

fn main() {
    let reps = scaled_reps();
    let mut cfg = CampaignConfig::paper(StrategyKind::ContextAware);
    cfg.reps = reps;
    let specs: Vec<_> = attack_core::AttackType::ALL
        .into_iter()
        .flat_map(|t| plan_attack_campaign(&cfg, t))
        .collect();
    println!(
        "throughput: Context-Aware campaign, {} sims x {} ticks (scale 1/{})",
        specs.len(),
        STEPS_PER_SIM,
        scale_divisor()
    );

    let cores = detected_cores();
    let workers = RunnerConfig::default().worker_count(specs.len());

    let (serial, serial_results) = timed(RunnerConfig::with_workers(1), &specs);
    println!(
        "  serial:   {:.2}s  {:.1} sims/s  {:.0} ticks/s",
        serial.seconds, serial.sims_per_sec, serial.ticks_per_sec
    );
    let (parallel, parallel_results) = timed(RunnerConfig::default(), &specs);
    println!(
        "  parallel: {:.2}s  {:.1} sims/s  {:.0} ticks/s  ({workers} workers, {cores} cores)",
        parallel.seconds, parallel.sims_per_sec, parallel.ticks_per_sec
    );

    let (batched, batched_results, fast_lanes, exact_lanes) = timed_batched(&specs);
    let batched_speedup = serial.seconds / batched.seconds;
    println!(
        "  batched:  {:.2}s  {:.1} sims/s  {:.0} ticks/s  ({fast_lanes} fast + {exact_lanes} exact lanes, 1 thread)",
        batched.seconds, batched.sims_per_sec, batched.ticks_per_sec
    );

    let speedup = serial.seconds / parallel.seconds;
    let identical = serial_results == parallel_results && serial_results == batched_results;
    println!(
        "  speedup: parallel {speedup:.2}x  batched {batched_speedup:.2}x  results identical: {identical}"
    );
    assert!(
        identical,
        "parallel and batched results must match serial bit for bit"
    );

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"campaign\": \"context_aware_all_types\",\n  \
         \"scale_divisor\": {},\n  \"reps_per_cell\": {},\n  \"sims\": {},\n  \
         \"ticks_per_sim\": {},\n  \"cores\": {},\n  \"workers\": {},\n  \
         \"serial\": {},\n  \"parallel\": {},\n  \"batched\": {},\n  \
         \"speedup\": {:.2},\n  \"batched_speedup\": {:.2},\n  \
         \"fast_lanes\": {},\n  \"exact_lanes\": {},\n  \
         \"results_identical\": {}\n}}\n",
        scale_divisor(),
        reps,
        specs.len(),
        STEPS_PER_SIM,
        cores,
        workers,
        pass_json(&serial),
        pass_json(&parallel),
        pass_json(&batched),
        speedup,
        batched_speedup,
        fast_lanes,
        exact_lanes,
        identical
    );

    // The tracked copy lives at the repo root (BENCH_throughput.json);
    // write_artifact drops a second copy under target/paper-artifacts/.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_throughput.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    write_artifact("BENCH_throughput.json", &json);
}
