//! Resilience campaign: every fault kind over the S1–S4 matrix at two
//! intensities, aggregated into `BENCH_resilience.json` at the repo root.
//!
//! The campaign is attack-free: the fault engine injects sensor, IPC and
//! CAN faults on a deterministic schedule and the report measures how the
//! ADAS degradation ladder absorbs them — hazard/accident rates, time
//! degraded, time in fail-safe, spurious FCWs and recovery latency.
//!
//! Run with e.g. `REPRO_SCALE=20 cargo bench -p bench --bench resilience`.
//! The campaign is run twice (parallel, then single-worker) and the two
//! JSON reports must match byte for byte: seeded fault injection is part
//! of the reproducibility contract.

use bench::{canonical_resilience_config, scale_divisor, write_artifact};
use platform::experiment::RunnerConfig;
use platform::resilience::run_resilience_campaign_with;

fn main() {
    let cfg = canonical_resilience_config();
    let t0 = std::time::Instant::now();
    let report = run_resilience_campaign_with(RunnerConfig::default(), &cfg);
    let seconds = t0.elapsed().as_secs_f64();
    println!(
        "resilience: {} runs across {} fault/intensity cells in {:.2}s (scale 1/{})",
        report.total_runs,
        report.cells.len(),
        seconds,
        scale_divisor()
    );
    for cell in &report.cells {
        println!(
            "  {:<18} i={:.1}  hazards {}/{}  accidents {}  failsafe {}  \
degraded {:>6.1}s  recovered {} ({})",
            cell.fault,
            cell.intensity,
            cell.hazardous_runs,
            cell.runs,
            cell.accident_runs,
            cell.failsafe_runs,
            cell.mean_degraded_s,
            cell.recovered_runs,
            cell.mean_recovery_s
                .map_or("-".to_string(), |s| format!("{s:.1}s")),
        );
    }

    let json = report.to_json();
    let replay = run_resilience_campaign_with(RunnerConfig::with_workers(1), &cfg);
    assert_eq!(
        json,
        replay.to_json(),
        "seeded fault campaign must be bit-reproducible across worker counts"
    );
    println!("  replay identical: true");

    // The tracked copy lives at the repo root (BENCH_resilience.json);
    // write_artifact drops a second copy under target/paper-artifacts/.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_resilience.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    write_artifact("BENCH_resilience.json", &json);
}
