//! Regenerates the paper's **Fig. 8**: the "Attack start time" × "Duration"
//! parameter space for *Acceleration* attacks. Solid points are hazardous
//! runs; the Context-Aware strategy's activations (diamonds) should all land
//! inside the critical window and all be hazardous (Observation 3).

use bench::{scale_divisor, write_artifact};
use driver_model::DriverConfig;
use platform::figures::{fig8_parameter_space, render_fig8};

fn main() {
    let scale = scale_divisor();
    // Paper sweep: start 5–35 s, duration 0.5–2.5 s.
    let start_step = 1.0 * scale as f64;
    let starts: Vec<f64> = (0..)
        .map(|i| 5.0 + i as f64 * start_step)
        .take_while(|&s| s <= 35.0)
        .collect();
    // The paper sweeps 0.5-2.5 s; our vehicle's stronger ACC recovery moves
    // the critical duration up, so the sweep extends to 6 s to show the
    // boundary (see EXPERIMENTS.md).
    let durations: Vec<f64> = [0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5].to_vec();
    let ca_runs = (20 / scale).max(2) as u64;

    println!(
        "Fig. 8 sweep: {} starts x {} durations + {} Context-Aware runs\n",
        starts.len(),
        durations.len(),
        ca_runs
    );
    let t0 = std::time::Instant::now();
    let points = fig8_parameter_space(&starts, &durations, ca_runs, 0xF18, DriverConfig::alert());
    println!("swept {} runs in {:.1?}\n", points.len(), t0.elapsed());

    // ASCII scatter: rows = durations (top = long), cols = start time.
    println!("duration \\ start {:.0}..{:.0}s   (#/o = grid hazard/no-hazard, D/d = Context-Aware)", starts[0], starts.last().unwrap());
    for &dur in durations.iter().rev() {
        let mut row = String::new();
        for &st in &starts {
            let grid = points
                .iter()
                .find(|p| !p.context_aware && (p.start.secs() - st).abs() < 1e-9 && (p.duration.secs() - dur).abs() < 1e-9);
            let ca_here = points.iter().any(|p| {
                p.context_aware
                    && (p.start.secs() - st).abs() < start_step / 2.0
            });
            row.push(match grid.map(|p| p.hazardous) {
                Some(true) => '#',
                Some(false) => 'o',
                None => ' ',
            });
            let _ = ca_here;
        }
        println!("  {dur:>4.1}s  {row}");
    }
    // Context-Aware activations as a separate rail under the grid.
    {
        let mut rail = String::new();
        for &st in &starts {
            let ca_here = points.iter().any(|p| {
                p.context_aware && (p.start.secs() - st).abs() < start_step / 2.0
            });
            rail.push(if ca_here { 'D' } else { ' ' });
        }
        println!("  [CA]   {rail}");
    }

    // Observation 3 check: every Context-Aware point is hazardous.
    let ca: Vec<_> = points.iter().filter(|p| p.context_aware).collect();
    let ca_hazardous = ca.iter().filter(|p| p.hazardous).count();
    println!(
        "\nContext-Aware activations: {} ({} hazardous)",
        ca.len(),
        ca_hazardous
    );
    let grid_haz = points
        .iter()
        .filter(|p| !p.context_aware && p.hazardous)
        .count();
    let grid_total = points.iter().filter(|p| !p.context_aware).count();
    println!("grid: {grid_haz}/{grid_total} hazardous");

    // The critical-window boundary: earliest hazardous grid start per
    // duration (the paper's dashed line around 24-25 s for its scenario).
    for &dur in &durations {
        let earliest = points
            .iter()
            .filter(|p| !p.context_aware && p.hazardous && (p.duration.secs() - dur).abs() < 1e-9)
            .map(|p| p.start.secs())
            .fold(f64::INFINITY, f64::min);
        if earliest.is_finite() {
            println!("duration {dur:.1}s: critical window opens at start ≈ {earliest:.0}s");
        } else {
            println!("duration {dur:.1}s: no hazardous grid point");
        }
    }

    write_artifact("fig8.tsv", &render_fig8(&points));
}
