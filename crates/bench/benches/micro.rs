//! Criterion micro-benchmarks of the reproduction's building blocks:
//! simulation stepping, CAN encode/decode + checksum repair, bus pub/sub,
//! context matching, and a full harness tick.

use attack_core::{
    AttackAction, AttackConfig, AttackEngine, ContextState, ContextTable, SteerDirection,
};
use canbus::{decode, rewrite_signal, Encoder, VirtualCarDbc};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use driving_sim::{ActuatorCommand, Scenario, ScenarioId, SensorSuite, World};
use msgbus::schema::GpsLocation;
use msgbus::{Bus, Payload, Topic};
use platform::{Harness, HarnessConfig, TraceConfig};
use units::{Distance, Seconds, Speed, Tick};

fn bench_world_step(c: &mut Criterion) {
    c.bench_function("world_step", |b| {
        let mut world = World::new(
            Scenario::new(ScenarioId::S2, Distance::meters(200.0)),
            1,
        );
        b.iter(|| {
            world.step(black_box(ActuatorCommand::default()));
        });
    });
}

fn bench_sensor_sample(c: &mut Criterion) {
    c.bench_function("sensor_sample", |b| {
        let world = World::new(Scenario::new(ScenarioId::S1, Distance::meters(70.0)), 2);
        let mut sensors = SensorSuite::new(2);
        b.iter(|| black_box(sensors.sample(&world)));
    });
}

fn bench_can_roundtrip(c: &mut Criterion) {
    c.bench_function("can_encode_decode", |b| {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        b.iter(|| {
            let frame = enc
                .encode(dbc.steering_control(), &[("STEER_ANGLE_CMD", 0.25)])
                .unwrap();
            black_box(decode(dbc.steering_control(), &frame).unwrap())
        });
    });

    c.bench_function("can_mitm_rewrite", |b| {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let frame = enc
            .encode(dbc.steering_control(), &[("STEER_ANGLE_CMD", 0.1)])
            .unwrap();
        b.iter(|| {
            black_box(
                rewrite_signal(dbc.steering_control(), &frame, "STEER_ANGLE_CMD", 0.5).unwrap(),
            )
        });
    });
}

fn bench_bus(c: &mut Criterion) {
    c.bench_function("bus_publish_fanout3", |b| {
        let bus = Bus::new();
        let _a = bus.subscribe(&[Topic::GpsLocationExternal]);
        let _b = bus.subscribe(&[Topic::GpsLocationExternal]);
        let _c = bus.subscribe(&[Topic::GpsLocationExternal]);
        b.iter(|| {
            bus.publish(
                Tick::ZERO,
                Payload::GpsLocationExternal(GpsLocation::default()),
            )
        });
    });
}

fn bench_context_matching(c: &mut Criterion) {
    c.bench_function("context_table_match", |b| {
        let table = ContextTable::default();
        let state = ContextState {
            v_ego: Speed::from_mph(60.0),
            v_cruise: Speed::from_mph(60.0),
            lead_present: true,
            hwt: Some(Seconds::new(2.0)),
            rs: Some(Speed::from_mph(10.0)),
            d_left: Distance::meters(0.5),
            d_right: Distance::meters(1.4),
        };
        b.iter(|| {
            black_box(table.action_matches(&state, AttackAction::Accelerate));
            black_box(table.action_matches(&state, AttackAction::Steer(SteerDirection::Right)))
        });
    });
}

fn bench_attack_engine_observe(c: &mut Criterion) {
    c.bench_function("attack_engine_observe", |b| {
        let bus = Bus::new();
        let mut engine = AttackEngine::new(&bus, AttackConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            bus.publish(
                Tick::new(i),
                Payload::GpsLocationExternal(GpsLocation {
                    speed: Speed::from_mph(60.0),
                    bearing: units::Angle::ZERO,
                }),
            );
            engine.observe(Tick::new(i));
            i += 1;
        });
    });
}

fn bench_harness_tick(c: &mut Criterion) {
    c.bench_function("harness_full_tick", |b| {
        let mut harness = Harness::new(HarnessConfig::with_attack(
            Scenario::new(ScenarioId::S2, Distance::meters(200.0)),
            3,
            AttackConfig::default(),
        ));
        b.iter(|| {
            black_box(harness.step());
        });
    });

    // Same tick with the flight recorder attached: the acceptance bar is
    // that the *disabled* path above pays <2% for the instrumentation, and
    // this shows what enabling it costs.
    c.bench_function("harness_full_tick_traced", |b| {
        let mut harness = Harness::new(
            HarnessConfig::with_attack(
                Scenario::new(ScenarioId::S2, Distance::meters(200.0)),
                3,
                AttackConfig::default(),
            )
            .traced(TraceConfig::enabled(256)),
        );
        b.iter(|| {
            black_box(harness.step());
        });
    });
}

criterion_group!(
    benches,
    bench_world_step,
    bench_sensor_sample,
    bench_can_roundtrip,
    bench_bus,
    bench_context_matching,
    bench_attack_engine_observe,
    bench_harness_tick
);
criterion_main!(benches);
