//! Evaluates the §V defenses against every attack type: detection rate,
//! detection latency, and whether detection lands inside the
//! time-to-hazard window (the mitigation budget of the paper's Fig. 2).
//! Also measures the false-positive rate on attack-free runs.

use attack_core::{AttackType, StrategyKind, ValueMode};
use bench::{scaled_reps, write_artifact};
use driver_model::DriverConfig;
use platform::experiment::{plan_attack_campaign, plan_no_attack_campaign, run_parallel, CampaignConfig};

fn main() {
    let reps = scaled_reps();
    let mut report = String::new();

    // False positives: defenses watching attack-free traffic.
    let mut specs = plan_no_attack_campaign(reps, 0xDEF0, DriverConfig::alert());
    for s in &mut specs {
        s.defenses_enabled = true;
    }
    let baseline = run_parallel(&specs);
    let fp_inv = baseline.iter().filter(|r| r.invariant_detected.is_some()).count();
    let fp_mon = baseline.iter().filter(|r| r.monitor_detected.is_some()).count();
    report.push_str(&format!(
        "attack-free false positives over {} runs: invariant {fp_inv}, monitor {fp_mon}\n\n",
        baseline.len()
    ));

    report.push_str(
        "Context-Aware attacks with strategic values (the paper's stealthiest case):\n\
         | attack type           | runs | detected(inv) | detected(mon) | med latency | in time |\n",
    );
    for attack_type in AttackType::ALL {
        let mut cfg = CampaignConfig::paper(StrategyKind::ContextAware);
        cfg.value_mode = ValueMode::Strategic;
        cfg.reps = reps;
        let mut specs = plan_attack_campaign(&cfg, attack_type);
        for s in &mut specs {
            s.defenses_enabled = true;
        }
        let results = run_parallel(&specs);
        let activated: Vec<_> = results
            .iter()
            .filter(|r| r.attack_activated.is_some())
            .collect();
        let det_inv = activated.iter().filter(|r| r.invariant_detected.is_some()).count();
        let det_mon = activated.iter().filter(|r| r.monitor_detected.is_some()).count();
        // Earliest of the two detectors per run.
        let mut latencies: Vec<f64> = activated
            .iter()
            .filter_map(|r| {
                let d = match (r.invariant_detected, r.monitor_detected) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }?;
                let t_a = r.attack_activated?;
                (d >= t_a).then(|| (d - t_a).secs())
            })
            .collect();
        latencies.sort_by(f64::total_cmp);
        let median = latencies
            .get(latencies.len() / 2)
            .map_or(f64::NAN, |v| *v);
        let in_time = activated
            .iter()
            .filter(|r| {
                let d = match (r.invariant_detected, r.monitor_detected) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                match (d, r.first_hazard) {
                    (Some(d), Some((h, _))) => d < h,
                    (Some(_), None) => true,
                    _ => false,
                }
            })
            .count();
        report.push_str(&format!(
            "| {:<21} | {:>4} | {:>13} | {:>13} | {:>9.2}s | {:>4}/{:<4} |\n",
            attack_type.label(),
            activated.len(),
            det_inv,
            det_mon,
            median,
            in_time,
            activated.len(),
        ));
    }

    println!("{report}");
    write_artifact("defense.txt", &report);
}
