//! Defense campaign: every defense deployment (off / observe / degrade /
//! fail-safe) against the clean baseline, the Context-Aware strategic
//! attacker, and the full fault matrix, aggregated into
//! `BENCH_defense.json` at the repo root.
//!
//! The report answers, per (policy, threat) cell: did a detector fire, how
//! fast after onset, did acting on it reduce hazards/accidents, and — on
//! the clean threat — whether any detection was spurious.
//!
//! Run with e.g. `REPRO_SCALE=20 cargo bench -p bench --bench defense`.
//! The campaign is run twice (parallel, then single-worker) and the two
//! JSON reports must match byte for byte.

use bench::{scale_divisor, write_artifact};
use platform::defense_campaign::{run_defense_campaign_with, DefenseCampaignConfig};
use platform::experiment::RunnerConfig;

fn main() {
    // The threat matrix is ~25 threats x 4 policies x 12 scenario cells, so
    // reps stay small: 2 at full scale, 1 under any REPRO_SCALE.
    let reps = if scale_divisor() > 1 { 1 } else { 2 };
    let cfg = DefenseCampaignConfig::new(0xD3F3, reps);
    let t0 = std::time::Instant::now();
    let report = run_defense_campaign_with(RunnerConfig::default(), &cfg);
    let seconds = t0.elapsed().as_secs_f64();
    println!(
        "defense: {} runs across {} policy/threat cells in {:.2}s (scale 1/{})",
        report.total_runs,
        report.cells.len(),
        seconds,
        scale_divisor()
    );
    for cell in &report.cells {
        let detection = cell
            .mean_detection_s
            .map_or("     -".to_string(), |s| format!("{s:5.2}s"));
        println!(
            "  {:<9} {:<26} haz {:>2}/{:<2} acc {:>2}  det {:>2} \
(ids {:>2} inv {:>2} mon {:>2})  gates {:>4}  latency {}",
            cell.policy,
            cell.threat,
            cell.hazardous_runs,
            cell.runs,
            cell.accident_runs,
            cell.detected_runs,
            cell.ids_detected_runs,
            cell.invariant_detected_runs,
            cell.monitor_detected_runs,
            cell.gate_rejections,
            detection,
        );
    }

    let json = report.to_json();
    let replay = run_defense_campaign_with(RunnerConfig::with_workers(1), &cfg);
    assert_eq!(
        json,
        replay.to_json(),
        "defense campaign must be bit-reproducible across worker counts"
    );
    println!("  replay identical: true");

    // The tracked copy lives at the repo root (BENCH_defense.json);
    // write_artifact drops a second copy under target/paper-artifacts/.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_defense.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    write_artifact("BENCH_defense.json", &json);
}
