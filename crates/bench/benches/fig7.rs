//! Regenerates the paper's **Fig. 7**: "Trajectory of the Ego Vehicle during
//! an attack-free simulation" — the lateral wander of the ALC within (and
//! occasionally onto) the lane lines, demonstrating Observation 1: lane
//! invasions can happen even without any attacks.

use bench::write_artifact;
use platform::figures::{fig7_trajectory, render_fig7};

fn main() {
    // One representative run, sampled at 10 Hz, plus invasion statistics
    // over several seeds.
    let (samples, invasions) = fig7_trajectory(42, 10);
    let tsv = render_fig7(&samples);
    println!("Fig. 7 trajectory (t, lateral offset, lane lines, invading):\n");

    // ASCII rendering of the wander band.
    let left = samples[0].left_line.raw();
    let right = samples[0].right_line.raw();
    for s in samples.iter().step_by(10) {
        let width = 61usize;
        let col = (((s.lateral.raw() - right) / (left - right)) * (width as f64 - 1.0))
            .clamp(0.0, width as f64 - 1.0) as usize;
        let mut line: Vec<char> = vec![' '; width];
        line[0] = '|';
        line[width / 2] = '.';
        line[width - 1] = '|';
        line[col] = if s.invading { 'X' } else { '*' };
        let rendered: String = line.into_iter().collect();
        println!("t={:>5.1}s {rendered}", s.t.secs());
    }

    println!("\nlane invasions in this run: {invasions}");

    // Invasion-rate statistics across seeds (the paper reports 0.46/s; see
    // EXPERIMENTS.md for why this reproduction's rate is lower).
    let mut total = 0u64;
    let runs = 20u64;
    for seed in 0..runs {
        let (_, inv) = fig7_trajectory(seed, 5000);
        total += inv;
    }
    println!(
        "invasions/s across {runs} attack-free runs: {:.3}",
        total as f64 / (runs as f64 * 50.0)
    );

    write_artifact("fig7.tsv", &tsv);
}
