//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Checksum repair on/off** — without recomputing the Honda checksum,
//!    every corrupted frame is dropped by the receiving ECU and the attack
//!    does nothing (the paper's Fig. 4 step is load-bearing).
//! 2. **Panda firmware checks on/off** — with the strict firmware envelope
//!    enforced, fixed-value attacks are filtered while strategic values
//!    still pass (§IV-E.4 / §V).
//! 3. **Driver attentiveness** — the alert driver prevents most fixed-value
//!    longitudinal attacks but none of the steering ones (Observations 4/5).
//! 4. **Context-gated vs random start** — the Random-DUR vs Context-Aware
//!    comparison at equal duration budgets.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use bench::{scaled_reps, write_artifact};
use canbus::{CanFrame, VirtualCarDbc};
use driver_model::DriverConfig;
use platform::experiment::{plan_attack_campaign, run_parallel, CampaignConfig};
use platform::{Harness, HarnessConfig};
use driving_sim::{Scenario, ScenarioId};
use units::Distance;

/// Ablation 1: a naive attacker who flips signal bits *without* repairing
/// the checksum. Implemented as a harness-level experiment: we corrupt the
/// steering frame's data directly and count how many frames the actuator ECU
/// accepts.
fn checksum_ablation() -> String {
    let dbc = VirtualCarDbc::new();
    let mut enc = canbus::Encoder::new();
    let mut accepted_naive = 0;
    let mut accepted_repaired = 0;
    let n = 1000;
    for i in 0..n {
        let frame = enc
            .encode(dbc.steering_control(), &[("STEER_ANGLE_CMD", 0.1)])
            .unwrap();
        // Naive: overwrite the angle bytes, leave the checksum alone.
        let mut naive = frame;
        naive.data_mut()[0] = (i % 256) as u8;
        if canbus::decode(dbc.steering_control(), &naive).is_ok() {
            accepted_naive += 1;
        }
        // Paper attacker: rewrite via the injector (checksum repaired).
        let repaired =
            canbus::rewrite_signal(dbc.steering_control(), &frame, "STEER_ANGLE_CMD", 0.5)
                .unwrap();
        if canbus::decode(dbc.steering_control(), &repaired).is_ok() {
            accepted_repaired += 1;
        }
    }
    let _ = CanFrame::MAX_ID;
    format!(
        "checksum repair ablation ({n} corrupted steering frames):\n  naive bit-flips accepted by ECU: {accepted_naive}\n  checksum-repaired rewrites accepted: {accepted_repaired}\n"
    )
}

/// Ablation 2: Panda firmware checks enabled.
fn panda_ablation(reps: u32) -> String {
    let mut out = String::from("Panda firmware-check ablation (Acceleration attacks):\n");
    for (mode, label) in [(ValueMode::Fixed, "fixed"), (ValueMode::Strategic, "strategic")] {
        for panda in [false, true] {
            let mut cfg = CampaignConfig::paper(StrategyKind::ContextAware);
            cfg.value_mode = mode;
            cfg.reps = reps;
            cfg.panda_enabled = panda;
            let mut specs = plan_attack_campaign(&cfg, AttackType::Acceleration);
            for s in &mut specs {
                s.panda_enabled = panda;
            }
            let results = run_parallel(&specs);
            let hazards = results.iter().filter(|r| r.hazardous()).count();
            let blocked: u64 = results.iter().map(|r| r.panda_blocked).sum();
            out.push_str(&format!(
                "  {label:>9} values, panda {}: hazards {hazards}/{} (frames blocked: {blocked})\n",
                if panda { "ON " } else { "off" },
                results.len(),
            ));
        }
    }
    out
}

/// Ablation 3: driver attentiveness per attack type (strategic values).
fn driver_ablation(reps: u32) -> String {
    let mut out = String::from("driver-attentiveness ablation (fixed values, Context-Aware):\n");
    for attack_type in [
        AttackType::Acceleration,
        AttackType::Deceleration,
        AttackType::SteeringRight,
    ] {
        let mut cfg = CampaignConfig::paper(StrategyKind::ContextAware);
        cfg.value_mode = ValueMode::Fixed;
        cfg.reps = reps;
        let specs = plan_attack_campaign(&cfg, attack_type);
        let alert = run_parallel(&specs);
        let mut inattentive = specs;
        for s in &mut inattentive {
            s.driver = DriverConfig::inattentive();
        }
        let absent = run_parallel(&inattentive);
        let h_alert = alert.iter().filter(|r| r.hazardous()).count();
        let h_absent = absent.iter().filter(|r| r.hazardous()).count();
        out.push_str(&format!(
            "  {:<22} hazards with alert driver {h_alert}/{} vs inattentive {h_absent}/{}\n",
            attack_type.label(),
            alert.len(),
            absent.len(),
        ));
    }
    out
}

/// Ablation 4: one concrete run showing random start wasting the window.
fn start_time_ablation() -> String {
    let scenario = Scenario::new(ScenarioId::S1, Distance::meters(100.0));
    let ctx = Harness::new(HarnessConfig::with_attack(
        scenario,
        9,
        AttackConfig {
            attack_type: AttackType::Acceleration,
            strategy: StrategyKind::ContextAware,
            ..AttackConfig::default()
        },
    ))
    .run();
    let rnd = Harness::new(HarnessConfig::with_attack(
        scenario,
        9,
        AttackConfig {
            attack_type: AttackType::Acceleration,
            strategy: StrategyKind::RandomDur,
            value_mode: ValueMode::Fixed,
            ..AttackConfig::default()
        },
    ))
    .run();
    format!(
        "start/duration ablation (same seed, Acceleration, S1@100m):\n  Context-Aware: activated {:?}, hazard {:?}\n  Random-DUR:    activated {:?}, hazard {:?}\n",
        ctx.attack_activated.map(|t| t.secs()),
        ctx.first_hazard.map(|(t, k)| (t.secs(), k)),
        rnd.attack_activated.map(|t| t.secs()),
        rnd.first_hazard.map(|(t, k)| (t.secs(), k)),
    )
}

fn main() {
    let reps = scaled_reps().min(5);
    let mut report = String::new();
    report.push_str(&checksum_ablation());
    report.push('\n');
    report.push_str(&panda_ablation(reps));
    report.push('\n');
    report.push_str(&driver_ablation(reps));
    report.push('\n');
    report.push_str(&start_time_ablation());
    println!("{report}");
    write_artifact("ablations.txt", &report);
}
