//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! Each table/figure has its own bench target (run with
//! `cargo bench -p bench --bench <name>`):
//!
//! | target      | regenerates                                    |
//! |-------------|------------------------------------------------|
//! | `table_iv`  | Table IV — strategy comparison with alert driver |
//! | `table_v`   | Table V — strategic value corruption ablation   |
//! | `fig7`      | Fig. 7 — attack-free ego trajectory             |
//! | `fig8`      | Fig. 8 — start-time × duration parameter space  |
//! | `ablations` | checksum-repair / Panda / driver ablations      |
//! | `micro`     | Criterion micro-benchmarks of the components    |
//!
//! Campaign sizes default to the paper's (1,440 runs per strategy; 14,400
//! for Random-ST+DUR). Set `REPRO_SCALE=<divisor>` to shrink them for a
//! quick pass, e.g. `REPRO_SCALE=10` runs 144-sim campaigns.

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

use platform::metrics::MeanStd;

/// Reads the campaign scale divisor from `REPRO_SCALE` (default 1 = full
/// paper size).
///
/// # Examples
///
/// ```
/// // Without the variable set, campaigns run at full size.
/// std::env::remove_var("REPRO_SCALE");
/// assert_eq!(bench::scale_divisor(), 1);
/// ```
pub fn scale_divisor() -> u32 {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&d| d >= 1)
        .unwrap_or(1)
}

/// Repetitions per (scenario, gap) cell after scaling: the paper's 20,
/// divided by [`scale_divisor`], at least 1.
pub fn scaled_reps() -> u32 {
    (20 / scale_divisor()).max(1)
}

/// The canonical resilience campaign: base seed 7, the paper's
/// repetition count after [`scale_divisor`] scaling, `Degrade` defense.
///
/// This is the single definition shared by the `resilience` bench target
/// (which writes `BENCH_resilience.json`) and the campaignd integration
/// tests (which assert the daemon reproduces the same report byte for
/// byte) — one campaign identity, two front ends.
pub fn canonical_resilience_config() -> platform::resilience::ResilienceConfig {
    platform::resilience::ResilienceConfig::new(7, scaled_reps())
}

/// Formats a mean ± std pair the way the paper's tables print TTH.
pub fn fmt_tth(ms: &MeanStd) -> String {
    if ms.n == 0 {
        "-".to_owned()
    } else {
        format!("{:.2}±{:.2}", ms.mean, ms.std)
    }
}

/// Writes an artifact file under `target/paper-artifacts/` and prints where.
pub fn write_artifact(name: &str, contents: &str) {
    let dir = std::path::Path::new("target/paper-artifacts");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, contents).is_ok() {
            println!("[artifact] {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_tth_handles_empty() {
        assert_eq!(fmt_tth(&MeanStd::default()), "-");
        let ms = MeanStd {
            mean: 2.43,
            std: 1.29,
            n: 100,
        };
        assert_eq!(fmt_tth(&ms), "2.43±1.29");
    }

    #[test]
    fn scaled_reps_is_at_least_one() {
        // Cannot set env vars safely in parallel tests; just check the
        // arithmetic bounds with the default.
        assert!(scaled_reps() >= 1);
        assert!(scaled_reps() <= 20);
    }
}
