//! The panic-brake profile, Eq. 4 of the paper.

use units::Seconds;

/// Fraction of full braking applied `t` seconds after the driver starts to
/// brake: `e^(10t−12) / (1 + e^(10t−12))` (Gaspar & McGehee's fit of driver
/// responses to sudden unintended acceleration; paper Eq. 4).
///
/// The sigmoid is near zero for the first ~0.8 s (moving the foot), crosses
/// 50% at 1.2 s and is essentially complete by 1.5 s — "typically human
/// drivers respond to sudden unintended acceleration with a hard brake
/// within 1.5 seconds".
///
/// # Examples
///
/// ```
/// use driver_model::brake_curve;
/// use units::Seconds;
///
/// assert!(brake_curve(Seconds::new(0.0)) < 0.01);
/// assert!((brake_curve(Seconds::new(1.2)) - 0.5).abs() < 1e-9);
/// assert!(brake_curve(Seconds::new(1.5)) > 0.9);
/// ```
// adas-lint: allow(R1, reason = "dimensionless brake fraction in [0, 1]")
pub fn brake_curve(t: Seconds) -> f64 {
    let x = (10.0 * t.secs() - 12.0).exp();
    x / (1.0 + x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_increasing() {
        let mut prev = -1.0;
        for i in 0..=300 {
            let v = brake_curve(Seconds::new(i as f64 * 0.01));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn bounded_zero_one() {
        for t in [-5.0, 0.0, 0.5, 1.2, 2.0, 10.0] {
            let v = brake_curve(Seconds::new(t));
            assert!((0.0..=1.0).contains(&v), "t={t} v={v}");
        }
    }

    #[test]
    fn half_brake_at_1_2_seconds() {
        assert!((brake_curve(Seconds::new(1.2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn essentially_complete_by_1_5_seconds() {
        assert!(brake_curve(Seconds::new(1.5)) > 0.95);
        assert!(brake_curve(Seconds::new(2.0)) > 0.999);
    }
}
