//! The driver state machine: monitoring → reacting → engaged.

use serde::{Deserialize, Serialize};
use units::{Accel, Angle, Distance, Speed, Tick};

use crate::{brake_curve, DriverConfig};

/// What the driver can perceive in one control cycle: the vehicle's realised
/// behaviour plus any ADAS alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Current vehicle speed (from the speedometer).
    pub speed: Speed,
    /// The cruise set-speed the driver selected.
    pub v_cruise: Speed,
    /// The longitudinal command reaching the actuators (felt as jolt).
    pub accel_cmd: Accel,
    /// The steering command reaching the actuators.
    pub steer_cmd: Angle,
    /// Whether the ADAS raised an alert this cycle.
    pub adas_alert: bool,
    /// Lateral offset from the lane centre (used to steer back once engaged).
    pub lane_offset: Distance,
    /// Visible gap to a lead vehicle, if one is ahead (drivers can judge
    /// following distance by eye).
    pub lead_gap: Option<Distance>,
}

/// What kind of anomaly the driver noticed — it shapes the response: a
/// phantom hard brake is answered by releasing the pedals and resuming,
/// everything else by a panic brake along Eq. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Braking harder than the ADAS envelope allows.
    UnexpectedBrake,
    /// Accelerating harder than the envelope allows.
    UnexpectedAccel,
    /// Steering beyond the envelope.
    UnexpectedSteer,
    /// Speed above 1.1 × the cruise set-speed.
    Overspeed,
    /// The ADAS raised an alert.
    AdasAlert,
}

/// The command issued by an engaged driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverCommand {
    /// Longitudinal command (panic brake per Eq. 4).
    pub accel: Accel,
    /// Steering command (back toward the lane centre).
    pub steer: Angle,
}

/// Where the driver is in the perceive–react–act pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriverPhase {
    /// Hands off, monitoring.
    Monitoring,
    /// Noticed something; the 2.5 s reaction clock is running.
    Reacting {
        /// When the anomaly/alert was perceived (the timeline's `t_d`).
        noticed_at: Tick,
        /// What was noticed.
        anomaly: AnomalyKind,
    },
    /// Physically controlling the car (the timeline's `t_ex` onward).
    Engaged {
        /// When the driver took over.
        engaged_at: Tick,
        /// What was noticed.
        anomaly: AnomalyKind,
    },
}

/// The simulated human driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Driver {
    config: DriverConfig,
    phase: DriverPhase,
    /// Last observed lane offset, for the damping term of the steering
    /// correction (humans anticipate lateral motion).
    prev_offset: Option<Distance>,
    /// The panic-brake phase has completed; the driver now just drives.
    released: bool,
}

impl Driver {
    /// Creates a driver in the monitoring phase.
    pub fn new(config: DriverConfig) -> Self {
        Self {
            config,
            phase: DriverPhase::Monitoring,
            prev_offset: None,
            released: false,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> DriverPhase {
        self.phase
    }

    /// When the driver first noticed an anomaly or alert (`t_d`), if ever.
    pub fn noticed_at(&self) -> Option<Tick> {
        match self.phase {
            DriverPhase::Monitoring => None,
            DriverPhase::Reacting { noticed_at, .. } => Some(noticed_at),
            DriverPhase::Engaged { engaged_at, .. } => {
                // Reconstruct: engagement happens exactly reaction_time later.
                let delay = Tick::from_time(self.config.reaction_time).index();
                Some(Tick::new(engaged_at.index().saturating_sub(delay)))
            }
        }
    }

    /// When the driver physically took over (`t_ex`), if they have.
    pub fn engaged_at(&self) -> Option<Tick> {
        match self.phase {
            DriverPhase::Engaged { engaged_at, .. } => Some(engaged_at),
            _ => None,
        }
    }

    /// What the driver noticed, if anything.
    pub fn anomaly(&self) -> Option<AnomalyKind> {
        match self.phase {
            DriverPhase::Monitoring => None,
            DriverPhase::Reacting { anomaly, .. } | DriverPhase::Engaged { anomaly, .. } => {
                Some(anomaly)
            }
        }
    }

    /// Whether the driver is controlling the car.
    pub fn is_engaged(&self) -> bool {
        matches!(self.phase, DriverPhase::Engaged { .. })
    }

    /// Whether an observation violates the driver's anomaly thresholds.
    pub fn is_anomalous(&self, obs: &Observation) -> bool {
        self.classify(obs).is_some()
    }

    /// Classifies the first anomaly in an observation, if any.
    pub fn classify(&self, obs: &Observation) -> Option<AnomalyKind> {
        if obs.adas_alert {
            Some(AnomalyKind::AdasAlert)
        } else if obs.accel_cmd > self.config.accel_threshold {
            Some(AnomalyKind::UnexpectedAccel)
        } else if obs.accel_cmd < self.config.brake_threshold {
            Some(AnomalyKind::UnexpectedBrake)
        } else if obs.steer_cmd.abs() > self.config.steer_threshold {
            Some(AnomalyKind::UnexpectedSteer)
        } else if obs.speed.mps() > obs.v_cruise.mps() * self.config.overspeed_factor {
            Some(AnomalyKind::Overspeed)
        } else {
            None
        }
    }

    /// Advances the driver one control cycle. Returns the driver's command
    /// while engaged, `None` while the ADAS is still in charge.
    pub fn step(&mut self, now: Tick, obs: &Observation) -> Option<DriverCommand> {
        if !self.config.attentive {
            return None;
        }
        match self.phase {
            DriverPhase::Monitoring => {
                if let Some(anomaly) = self.classify(obs) {
                    self.phase = DriverPhase::Reacting {
                        noticed_at: now,
                        anomaly,
                    };
                }
                None
            }
            DriverPhase::Reacting { noticed_at, anomaly } => {
                if now.since(noticed_at) >= self.config.reaction_time {
                    self.phase = DriverPhase::Engaged {
                        engaged_at: now,
                        anomaly,
                    };
                    Some(self.command(now, obs))
                } else {
                    None
                }
            }
            DriverPhase::Engaged { .. } => Some(self.command(now, obs)),
        }
    }

    /// Whether a lead vehicle is uncomfortably close (within ~1.8 s of
    /// headway) — the situation in which a human commits to a full stop.
    fn forward_threat(obs: &Observation) -> bool {
        obs.lead_gap
            .is_some_and(|g| g.raw() < 1.8 * obs.speed.mps().max(5.0))
    }

    /// The engaged driver's "manual driving": hold a safe following
    /// distance, otherwise recover toward the cruise speed.
    fn manual_drive(&self, obs: &Observation) -> Accel {
        if Self::forward_threat(obs) {
            Accel::from_mps2(-1.5)
        } else {
            let err = obs.v_cruise.mps() - obs.speed.mps();
            Accel::from_mps2((0.3 * err).clamp(-2.0, 1.5))
        }
    }

    fn command(&mut self, now: Tick, obs: &Observation) -> DriverCommand {
        let rate = match self.prev_offset {
            Some(prev) => (obs.lane_offset - prev).raw() / units::DT.secs(),
            None => 0.0,
        };
        self.prev_offset = Some(obs.lane_offset);
        let (engaged_at, anomaly) = match self.phase {
            DriverPhase::Engaged { engaged_at, anomaly } => (engaged_at, anomaly),
            _ => (now, AnomalyKind::AdasAlert),
        };
        // A phantom hard brake is answered by releasing the brake and
        // resuming normal driving. Everything else starts with a panic
        // brake along Eq. 4, held until the situation is back under
        // control — the gap safe again and the speed below cruise — and to
        // a complete stop if the threat never clears (the paper's driver
        // "stops in the middle of a lane", its source of new hazards).
        let accel = match anomaly {
            AnomalyKind::UnexpectedBrake => self.manual_drive(obs),
            _ => {
                if self.released {
                    self.manual_drive(obs)
                } else {
                    let v = obs.speed.mps();
                    let gap_safe = obs
                        .lead_gap
                        .is_none_or(|g| g.raw() >= 1.5 * v.max(5.0));
                    if gap_safe && v <= obs.v_cruise.mps() * 0.9 {
                        self.released = true;
                        self.manual_drive(obs)
                    } else if v < 0.5 {
                        Accel::ZERO // blocked: stopped in lane
                    } else {
                        self.config.max_brake * brake_curve(now.since(engaged_at))
                    }
                }
            }
        };
        // Steer gently back toward the lane centre, with anticipation of
        // the car's lateral motion (damping).
        let steer = Angle::from_radians(-0.006 * obs.lane_offset.raw() - 0.012 * rate).clamp(
            Angle::from_degrees(-2.0),
            Angle::from_degrees(2.0),
        );
        DriverCommand { accel, steer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> Observation {
        Observation {
            speed: Speed::from_mph(60.0),
            v_cruise: Speed::from_mph(60.0),
            accel_cmd: Accel::from_mps2(0.5),
            steer_cmd: Angle::from_degrees(0.2),
            adas_alert: false,
            lane_offset: Distance::meters(0.1),
            lead_gap: None,
        }
    }

    #[test]
    fn nominal_behaviour_never_engages() {
        let mut d = Driver::new(DriverConfig::alert());
        for i in 0..5000 {
            assert!(d.step(Tick::new(i), &nominal()).is_none());
        }
        assert_eq!(d.phase(), DriverPhase::Monitoring);
    }

    #[test]
    fn anomaly_thresholds_are_strict_inequalities() {
        let d = Driver::new(DriverConfig::alert());
        // Exactly at the limits (the strategic attack values): not anomalous.
        let mut obs = nominal();
        obs.accel_cmd = Accel::from_mps2(2.0);
        assert!(!d.is_anomalous(&obs));
        obs.accel_cmd = Accel::from_mps2(-3.5);
        assert!(!d.is_anomalous(&obs));
        obs.speed = Speed::from_mps(Speed::from_mph(60.0).mps() * 1.1);
        assert!(!d.is_anomalous(&obs));
        // Just beyond (the fixed attack values): anomalous.
        obs = nominal();
        obs.accel_cmd = Accel::from_mps2(2.4);
        assert!(d.is_anomalous(&obs));
        obs.accel_cmd = Accel::from_mps2(-4.0);
        assert!(d.is_anomalous(&obs));
    }

    #[test]
    fn engages_exactly_after_reaction_time() {
        let mut d = Driver::new(DriverConfig::alert());
        let mut obs = nominal();
        obs.accel_cmd = Accel::from_mps2(2.4);
        assert!(d.step(Tick::new(100), &obs).is_none());
        assert_eq!(d.noticed_at(), Some(Tick::new(100)));
        // Anomaly stops (attack value back in range) but the clock still runs.
        let calm = nominal();
        for i in 101..350 {
            assert!(d.step(Tick::new(i), &calm).is_none(), "tick {i}");
        }
        let cmd = d.step(Tick::new(350), &calm).expect("2.5 s after noticing");
        assert_eq!(d.engaged_at(), Some(Tick::new(350)));
        assert!(cmd.accel.mps2() <= 0.0, "driver brakes");
    }

    #[test]
    fn adas_alert_triggers_reaction() {
        let mut d = Driver::new(DriverConfig::alert());
        let mut obs = nominal();
        obs.adas_alert = true;
        d.step(Tick::ZERO, &obs);
        assert!(matches!(d.phase(), DriverPhase::Reacting { .. }));
    }

    #[test]
    fn brake_builds_along_eq4() {
        let mut d = Driver::new(DriverConfig::alert());
        let mut obs = nominal();
        obs.accel_cmd = Accel::from_mps2(2.4);
        d.step(Tick::ZERO, &obs);
        let calm = nominal();
        for i in 1..=250 {
            d.step(Tick::new(i), &calm);
        }
        // Engaged at tick 250; brake is tiny at first...
        let early = d.step(Tick::new(260), &calm).unwrap();
        assert!(early.accel.mps2().abs() < 0.1);
        // ...and near max 1.5 s later.
        let late = d.step(Tick::new(250 + 150), &calm).unwrap();
        assert!(late.accel.mps2() < -7.0, "got {}", late.accel);
    }

    #[test]
    fn engaged_driver_steers_toward_centre() {
        let mut d = Driver::new(DriverConfig::alert());
        let mut obs = nominal();
        obs.adas_alert = true;
        d.step(Tick::ZERO, &obs);
        let mut left_of_centre = nominal();
        left_of_centre.lane_offset = Distance::meters(1.0);
        for i in 1..=251 {
            d.step(Tick::new(i), &left_of_centre);
        }
        let cmd = d.step(Tick::new(252), &left_of_centre).unwrap();
        assert!(cmd.steer.radians() < 0.0, "steers right when left of centre");
    }

    #[test]
    fn inattentive_driver_ignores_everything() {
        let mut d = Driver::new(DriverConfig::inattentive());
        let mut obs = nominal();
        obs.accel_cmd = Accel::from_mps2(5.0);
        obs.adas_alert = true;
        for i in 0..1000 {
            assert!(d.step(Tick::new(i), &obs).is_none());
        }
        assert_eq!(d.phase(), DriverPhase::Monitoring);
        assert_eq!(d.noticed_at(), None);
    }

    #[test]
    fn overspeed_is_noticed() {
        let mut d = Driver::new(DriverConfig::alert());
        let mut obs = nominal();
        obs.speed = Speed::from_mph(67.0); // > 66 = 1.1 * 60
        d.step(Tick::ZERO, &obs);
        assert!(matches!(d.phase(), DriverPhase::Reacting { .. }));
    }
}
