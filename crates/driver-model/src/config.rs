//! Driver parameterisation.

use serde::{Deserialize, Serialize};
use units::{Accel, Angle, Seconds};

/// Parameters of the simulated driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Whether the driver is paying attention at all. An inattentive driver
    /// never notices anything (the paper's "without driver reaction"
    /// ablation).
    pub attentive: bool,
    /// Perception-plus-reaction delay before physically acting (2.5 s).
    pub reaction_time: Seconds,
    /// Acceleration above this is an anomaly (2 m/s²).
    pub accel_threshold: Accel,
    /// Braking below this (more negative) is an anomaly (−3.5 m/s²).
    pub brake_threshold: Accel,
    /// Steering beyond this magnitude is an anomaly.
    pub steer_threshold: Angle,
    /// Speed above `overspeed_factor × v_cruise` is an anomaly (1.1).
    pub overspeed_factor: f64,
    /// Peak deceleration of the driver's panic brake.
    pub max_brake: Accel,
}

impl DriverConfig {
    /// The alert driver of the paper's main experiments.
    pub fn alert() -> Self {
        Self {
            attentive: true,
            reaction_time: Seconds::new(2.5),
            accel_threshold: Accel::from_mps2(2.0),
            brake_threshold: Accel::from_mps2(-3.5),
            steer_threshold: Angle::from_degrees(0.6),
            overspeed_factor: 1.1,
            max_brake: Accel::from_mps2(-8.0),
        }
    }

    /// A driver who never intervenes (ablation baseline).
    pub fn inattentive() -> Self {
        Self {
            attentive: false,
            ..Self::alert()
        }
    }
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self::alert()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;

    #[test]
    fn alert_defaults_match_paper() {
        let c = DriverConfig::alert();
        assert_eq!(c.reaction_time, Seconds::new(2.5));
        assert_eq!(c.accel_threshold, Accel::from_mps2(2.0));
        assert_eq!(c.brake_threshold, Accel::from_mps2(-3.5));
        assert_eq!(c.overspeed_factor, 1.1);
        assert!(c.attentive);
    }

    #[test]
    fn inattentive_only_differs_in_attention() {
        let a = DriverConfig::alert();
        let i = DriverConfig::inattentive();
        assert!(!i.attentive);
        assert_eq!(i.reaction_time, a.reaction_time);
    }
}
