//! The human-driver reaction simulator of the paper's §IV-B.
//!
//! The simulated driver is *alerted* when the ADAS raises any safety alarm or
//! when an anomaly in vehicle behaviour is observable — a hard brake
//! (`|brake| > 3.5 m/s²`), an unexpected acceleration (`> 2 m/s²`), excessive
//! steering, or the speed exceeding the cruise set-speed by more than 10%.
//! Anomalies lasting even a single 10 ms step attract attention (the paper's
//! conservative choice, to make the attack harder). The driver then takes
//! 2.5 s — the average perception-plus-reaction time from the AV literature —
//! before physically acting, and brakes along the exponential curve of Eq. 4:
//!
//! ```text
//! brake(t) = e^(10 t − 12) / (1 + e^(10 t − 12))
//! ```
//!
//! while steering back toward the lane centre. The attack engine is expected
//! to stop injecting as soon as the driver engages.
//!
//! # Examples
//!
//! ```
//! use driver_model::{Driver, DriverConfig, Observation};
//! use units::{Accel, Angle, Distance, Speed, Tick};
//!
//! let mut driver = Driver::new(DriverConfig::alert());
//! let anomalous = Observation {
//!     speed: Speed::from_mph(60.0),
//!     v_cruise: Speed::from_mph(60.0),
//!     accel_cmd: Accel::from_mps2(2.4), // above the 2.0 threshold
//!     steer_cmd: Angle::ZERO,
//!     adas_alert: false,
//!     lane_offset: Distance::ZERO,
//!     lead_gap: None,
//! };
//! assert!(driver.step(Tick::ZERO, &anomalous).is_none());
//! assert!(driver.noticed_at().is_some(), "single-step anomaly noticed");
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

mod config;
mod driver;
mod reaction;

pub use config::DriverConfig;
pub use driver::{AnomalyKind, Driver, DriverCommand, DriverPhase, Observation};
pub use reaction::brake_curve;
