//! The per-tick fault applicator.

use canbus::CanFrame;
use driving_sim::SensorFrame;
use msgbus::schema::{GpsLocation, LaneModel, RadarState};
use units::mix::splitmix64;
use units::{Distance, Speed, Tick};

use crate::spec::{FaultKind, FaultSchedule, FaultSpec, FaultTarget, MAX_FAULTS};

/// Length of the pristine-frame history ring. Latency/delay faults can look
/// back at most `HISTORY_LEN - 1` ticks; a delay equal to the ring length
/// would alias the slot just written for the *current* tick, so delays are
/// clamped to `1..=HISTORY_LEN - 1`.
const HISTORY_LEN: usize = 256;

/// What the harness should publish this tick, per sensor stream.
///
/// `None` means "the message is lost": the module went silent
/// ([`FaultKind::SensorDropout`]) or the IPC layer dropped the publish
/// ([`FaultKind::BusPublishDrop`]). `Some` carries the *sample tick* and the
/// (possibly corrupted or delayed) payload to put on the bus. The sample
/// tick is the envelope timestamp the harness must publish with: a latency
/// or delay fault replays an old reading *with its old timestamp*, the way
/// a real delayed message still carries the time it was sampled — which is
/// exactly what lets an age-aware consumer see through the replay. With no
/// active fault the plan is the sampled frame stamped at the current tick,
/// so a fault-free engine is behaviorally invisible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishPlan {
    /// `gpsLocationExternal` sample tick and payload, if the message survives.
    pub gps: Option<(Tick, GpsLocation)>,
    /// `modelV2` sample tick and payload, if the message survives.
    pub lane: Option<(Tick, LaneModel)>,
    /// `radarState` sample tick and payload, if the message survives.
    pub radar: Option<(Tick, RadarState)>,
}

impl PublishPlan {
    /// A plan that publishes the frame untouched, stamped at `tick`.
    pub fn nominal(tick: Tick, frame: &SensorFrame) -> Self {
        Self {
            gps: Some((tick, frame.gps)),
            lane: Some((tick, frame.lane)),
            radar: Some((tick, frame.radar)),
        }
    }
}

/// Deterministic fault applicator for one simulation run.
///
/// Construct once per run with the run seed and a [`FaultSchedule`]; call
/// [`FaultEngine::apply_sensors`] after sampling the sensors (before
/// publishing) and [`FaultEngine::apply_can`] on the encoded actuator
/// frames (after MITM/attack processing, before the Panda safety check —
/// physical bus errors hit everything in flight).
///
/// All stochastic choices are stateless hashes of
/// `(seed, tick, slot, salt)`, so fault draws are reproducible and do not
/// perturb any other seeded stream in the simulation.
#[derive(Debug)]
pub struct FaultEngine {
    seed: u64,
    schedule: FaultSchedule,
    /// Pristine sampled frames for the last [`HISTORY_LEN`] ticks, indexed
    /// by `tick % HISTORY_LEN`; written before any mutation each tick.
    history: Vec<SensorFrame>,
    /// Frame captured at each spec's onset tick, keyed by the spec's dense
    /// schedule index; feeds [`FaultKind::SensorStuckAt`] and is cleared
    /// when the spec goes inactive.
    held: [Option<SensorFrame>; MAX_FAULTS],
    active_mask: u16,
    faults_injected: u64,
}

impl FaultEngine {
    /// Creates an engine for one run. This is the only allocation the
    /// engine ever performs.
    pub fn new(seed: u64, schedule: FaultSchedule) -> Self {
        Self {
            seed,
            schedule,
            history: vec![SensorFrame::default(); HISTORY_LEN],
            held: [None; MAX_FAULTS],
            active_mask: 0,
            faults_injected: 0,
        }
    }

    /// Bitmask of [`FaultKind`]s active on the most recent tick
    /// (bit = [`FaultKind::index`]).
    pub fn active_mask(&self) -> u16 {
        self.active_mask
    }

    /// Total corruption events injected so far: one per corrupted or
    /// suppressed sensor stream per tick, one per dropped/flipped CAN frame.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// First tick after the last scheduled fault window closes, if any —
    /// the reference point for recovery-latency measurement.
    pub fn last_fault_end(&self) -> Option<u64> {
        self.schedule.last_end()
    }

    /// Applies sensor- and bus-side faults for `tick`.
    ///
    /// `frame` is mutated in place to the *module-level* view (stuck,
    /// noisy or stale readings); the returned [`PublishPlan`] additionally
    /// reflects IPC-level loss and lag. The harness publishes from the plan.
    pub fn apply_sensors(&mut self, tick: Tick, frame: &mut SensorFrame) -> PublishPlan {
        let t = tick.index();
        self.active_mask = 0;

        // Record the pristine sample before anything corrupts it, so
        // latency faults replay truth, not previously-faulted frames.
        let slot = (t % HISTORY_LEN as u64) as usize;
        if let Some(cell) = self.history.get_mut(slot) {
            *cell = *frame;
        }

        let schedule = self.schedule;

        // Per-stream sample-tick stamps: start at the current tick and get
        // backdated by latency-class faults, so a replayed reading carries
        // the timestamp it was actually sampled at. Stuck-at and noise keep
        // the current stamp — the module is alive and publishing on time,
        // its *content* is wrong, which is the plausibility gates' problem.
        let mut gps_stamp = tick;
        let mut lane_stamp = tick;
        let mut radar_stamp = tick;

        // Pass 1: module-level corruption (affects `frame` itself).
        for (i, spec) in schedule.iter().enumerate() {
            if !spec.active_at(t) {
                if let Some(h) = self.held.get_mut(i) {
                    *h = None;
                }
                continue;
            }
            self.active_mask |= 1 << spec.kind.index();
            match spec.kind {
                FaultKind::SensorStuckAt => {
                    let held = match self.held.get_mut(i) {
                        Some(h) => h.get_or_insert(*frame),
                        None => continue,
                    };
                    let src = *held;
                    self.faults_injected += overwrite(frame, &src, spec.target);
                }
                FaultKind::SensorNoiseBurst => {
                    self.faults_injected += self.perturb(t, i as u64, frame, spec);
                }
                FaultKind::SensorLatency => {
                    if let Some((src_t, src)) = self.stale_frame(t, spec.delay) {
                        self.faults_injected += overwrite(frame, &src, spec.target);
                        backdate(
                            &mut gps_stamp,
                            &mut lane_stamp,
                            &mut radar_stamp,
                            Tick::new(src_t),
                            spec.target,
                        );
                    }
                }
                FaultKind::SensorDropout
                | FaultKind::BusPublishDrop
                | FaultKind::BusDelay
                | FaultKind::CanFrameDrop
                | FaultKind::CanBitFlip
                | FaultKind::CanBusOff => {}
            }
        }

        // Pass 2: IPC-level faults (affect the publish plan, not the frame).
        let mut plan = PublishPlan {
            gps: Some((gps_stamp, frame.gps)),
            lane: Some((lane_stamp, frame.lane)),
            radar: Some((radar_stamp, frame.radar)),
        };
        for (i, spec) in schedule.iter().enumerate() {
            if !spec.active_at(t) {
                continue;
            }
            let slot_salt = i as u64;
            match spec.kind {
                FaultKind::BusDelay => {
                    if let Some((src_t, src)) = self.stale_frame(t, spec.delay) {
                        if plan.gps.is_some() && spec.target.hits_gps() {
                            plan.gps = Some((Tick::new(src_t), src.gps));
                            self.faults_injected += 1;
                        }
                        if plan.lane.is_some() && spec.target.hits_camera() {
                            plan.lane = Some((Tick::new(src_t), src.lane));
                            self.faults_injected += 1;
                        }
                        if plan.radar.is_some() && spec.target.hits_radar() {
                            plan.radar = Some((Tick::new(src_t), src.radar));
                            self.faults_injected += 1;
                        }
                    }
                }
                FaultKind::SensorDropout | FaultKind::BusPublishDrop => {
                    let p = spec.intensity;
                    if spec.target.hits_gps()
                        && plan.gps.is_some()
                        && draw01(self.seed, t, slot_salt, SALT_DROP_GPS) < p
                    {
                        plan.gps = None;
                        self.faults_injected += 1;
                    }
                    if spec.target.hits_camera()
                        && plan.lane.is_some()
                        && draw01(self.seed, t, slot_salt, SALT_DROP_CAM) < p
                    {
                        plan.lane = None;
                        self.faults_injected += 1;
                    }
                    if spec.target.hits_radar()
                        && plan.radar.is_some()
                        && draw01(self.seed, t, slot_salt, SALT_DROP_RADAR) < p
                    {
                        plan.radar = None;
                        self.faults_injected += 1;
                    }
                }
                FaultKind::SensorStuckAt
                | FaultKind::SensorNoiseBurst
                | FaultKind::SensorLatency
                | FaultKind::CanFrameDrop
                | FaultKind::CanBitFlip
                | FaultKind::CanBusOff => {}
            }
        }

        plan
    }

    /// Applies CAN-side faults to the encoded actuator frames in flight.
    pub fn apply_can(&mut self, tick: Tick, frames: &mut Vec<CanFrame>) {
        let t = tick.index();
        let schedule = self.schedule;
        for (i, spec) in schedule.iter().enumerate() {
            if !spec.active_at(t) || !spec.kind.is_can() {
                continue;
            }
            self.active_mask |= 1 << spec.kind.index();
            let slot_salt = i as u64;
            match spec.kind {
                FaultKind::CanBusOff => {
                    self.faults_injected += frames.len() as u64;
                    frames.clear();
                }
                FaultKind::CanFrameDrop => {
                    let mut idx = 0u64;
                    let seed = self.seed;
                    let mut dropped = 0u64;
                    frames.retain(|_| {
                        let keep =
                            draw01(seed, t, slot_salt, SALT_CAN_DROP ^ idx) >= spec.intensity;
                        idx += 1;
                        if !keep {
                            dropped += 1;
                        }
                        keep
                    });
                    self.faults_injected += dropped;
                }
                FaultKind::CanBitFlip => {
                    for (j, frame) in frames.iter_mut().enumerate() {
                        let j = j as u64;
                        if draw01(self.seed, t, slot_salt, SALT_CAN_FLIP ^ j) >= spec.intensity {
                            continue;
                        }
                        let bits = frame.dlc() as u64 * 8;
                        if bits == 0 {
                            continue;
                        }
                        let bit = splitmix64(self.seed ^ splitmix64(t ^ splitmix64(slot_salt ^ SALT_CAN_BIT ^ j)))
                            % bits;
                        let byte = (bit / 8) as usize;
                        if let Some(b) = frame.data_mut().get_mut(byte) {
                            // The checksum is deliberately NOT repaired:
                            // receivers reject the frame and hold their last
                            // value, like real ECUs do on a corrupted frame.
                            *b ^= 1 << (bit % 8);
                            self.faults_injected += 1;
                        }
                    }
                }
                FaultKind::SensorDropout
                | FaultKind::SensorStuckAt
                | FaultKind::SensorNoiseBurst
                | FaultKind::SensorLatency
                | FaultKind::BusPublishDrop
                | FaultKind::BusDelay => {}
            }
        }
    }

    /// The pristine frame from `delay` ticks ago (clamped to the ring) and
    /// the tick it was sampled at, or `None` when the run is younger than
    /// the requested delay.
    fn stale_frame(&self, t: u64, delay: u32) -> Option<(u64, SensorFrame)> {
        let delay = (delay as u64).clamp(1, HISTORY_LEN as u64 - 1);
        let src = t.checked_sub(delay)?;
        let frame = self.history.get((src % HISTORY_LEN as u64) as usize).copied()?;
        Some((src, frame))
    }

    /// Adds bounded, seeded noise to the targeted streams; returns the
    /// number of streams perturbed.
    fn perturb(&self, t: u64, slot_salt: u64, frame: &mut SensorFrame, spec: &FaultSpec) -> u64 {
        let scale = spec.intensity;
        let mut n = 0;
        let u = |salt: u64| 2.0 * draw01(self.seed, t, slot_salt, salt) - 1.0;
        if spec.target.hits_gps() {
            frame.gps.speed =
                Speed::from_mps((frame.gps.speed.mps() + 2.0 * scale * u(SALT_NOISE_GPS)).max(0.0));
            n += 1;
        }
        if spec.target.hits_camera() {
            frame.lane.left_line =
                Distance::meters(frame.lane.left_line.raw() + 0.5 * scale * u(SALT_NOISE_LEFT));
            frame.lane.right_line =
                Distance::meters(frame.lane.right_line.raw() + 0.5 * scale * u(SALT_NOISE_RIGHT));
            frame.lane.curvature += 1e-3 * scale * u(SALT_NOISE_CURV);
            n += 1;
        }
        if spec.target.hits_radar() {
            if let Some(lead) = frame.radar.lead.as_mut() {
                lead.d_rel = Distance::meters(
                    (lead.d_rel.raw() + 5.0 * scale * u(SALT_NOISE_DREL)).max(0.0),
                );
                lead.v_lead = Speed::from_mps(
                    (lead.v_lead.mps() + 2.0 * scale * u(SALT_NOISE_VLEAD)).max(0.0),
                );
                n += 1;
            }
        }
        n
    }
}

const SALT_DROP_GPS: u64 = 0x01;
const SALT_DROP_CAM: u64 = 0x02;
const SALT_DROP_RADAR: u64 = 0x03;
const SALT_NOISE_GPS: u64 = 0x10;
const SALT_NOISE_LEFT: u64 = 0x11;
const SALT_NOISE_RIGHT: u64 = 0x12;
const SALT_NOISE_CURV: u64 = 0x13;
const SALT_NOISE_DREL: u64 = 0x14;
const SALT_NOISE_VLEAD: u64 = 0x15;
const SALT_CAN_DROP: u64 = 0x2000;
const SALT_CAN_FLIP: u64 = 0x4000;
const SALT_CAN_BIT: u64 = 0x8000;

/// Rewinds the stamp of each targeted stream to `src` (keeping the earliest
/// stamp if several latency faults stack).
fn backdate(
    gps: &mut Tick,
    lane: &mut Tick,
    radar: &mut Tick,
    src: Tick,
    target: FaultTarget,
) {
    if target.hits_gps() {
        *gps = (*gps).min(src);
    }
    if target.hits_camera() {
        *lane = (*lane).min(src);
    }
    if target.hits_radar() {
        *radar = (*radar).min(src);
    }
}

/// Copies the targeted streams of `src` over `frame`; returns the number of
/// streams overwritten.
fn overwrite(frame: &mut SensorFrame, src: &SensorFrame, target: FaultTarget) -> u64 {
    let mut n = 0;
    if target.hits_gps() {
        frame.gps = src.gps;
        n += 1;
    }
    if target.hits_camera() {
        frame.lane = src.lane;
        n += 1;
    }
    if target.hits_radar() {
        frame.radar = src.radar;
        n += 1;
    }
    n
}

/// Stateless draw in `[0, 1)` from `(seed, tick, slot, salt)` — 53 mantissa
/// bits, uniform, reproducible, and independent of call order.
fn draw01(seed: u64, tick: u64, slot: u64, salt: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(tick ^ splitmix64(slot ^ splitmix64(salt))));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultSpec;
    use msgbus::schema::LeadTrack;
    use units::Accel;

    fn frame(speed: f64, d_rel: f64) -> SensorFrame {
        SensorFrame {
            gps: GpsLocation {
                speed: Speed::from_mps(speed),
                ..GpsLocation::default()
            },
            lane: LaneModel {
                left_line: Distance::meters(1.85),
                right_line: Distance::meters(1.85),
                lane_width: Distance::meters(3.7),
                curvature: 0.0,
            },
            radar: RadarState {
                lead: Some(LeadTrack {
                    d_rel: Distance::meters(d_rel),
                    v_lead: Speed::from_mps(15.0),
                    a_lead: Accel::ZERO,
                }),
            },
        }
    }

    #[test]
    fn no_schedule_is_invisible() {
        let mut eng = FaultEngine::new(7, FaultSchedule::empty());
        let mut f = frame(25.0, 60.0);
        let pristine = f;
        let plan = eng.apply_sensors(Tick::new(10), &mut f);
        assert_eq!(f, pristine);
        assert_eq!(plan, PublishPlan::nominal(Tick::new(10), &pristine));
        assert_eq!(eng.active_mask(), 0);
        assert_eq!(eng.faults_injected(), 0);
    }

    #[test]
    fn dropout_full_intensity_suppresses_target_only() {
        let spec = FaultSpec::window(FaultKind::SensorDropout, FaultTarget::Radar, 5, 10);
        let mut eng = FaultEngine::new(1, FaultSchedule::single(spec));
        let mut f = frame(25.0, 60.0);
        let plan = eng.apply_sensors(Tick::new(7), &mut f);
        assert!(plan.radar.is_none(), "radar message lost");
        assert!(plan.gps.is_some() && plan.lane.is_some(), "others survive");
        assert_eq!(eng.active_mask(), 1 << FaultKind::SensorDropout.index());
    }

    #[test]
    fn fault_window_respected() {
        let spec = FaultSpec::window(FaultKind::SensorDropout, FaultTarget::All, 5, 10);
        let mut eng = FaultEngine::new(1, FaultSchedule::single(spec));
        let mut f = frame(25.0, 60.0);
        let before = eng.apply_sensors(Tick::new(4), &mut f);
        assert_eq!(before, PublishPlan::nominal(Tick::new(4), &f));
        let after = eng.apply_sensors(Tick::new(15), &mut f);
        assert_eq!(after, PublishPlan::nominal(Tick::new(15), &f));
        assert_eq!(eng.active_mask(), 0);
    }

    #[test]
    fn stuck_at_holds_onset_frame_and_releases() {
        let spec = FaultSpec::window(FaultKind::SensorStuckAt, FaultTarget::Gps, 10, 5);
        let mut eng = FaultEngine::new(1, FaultSchedule::single(spec));
        let mut f0 = frame(20.0, 60.0);
        eng.apply_sensors(Tick::new(10), &mut f0);
        assert!((f0.gps.speed.mps() - 20.0).abs() < 1e-12);
        let mut f1 = frame(30.0, 60.0);
        eng.apply_sensors(Tick::new(12), &mut f1);
        assert!(
            (f1.gps.speed.mps() - 20.0).abs() < 1e-12,
            "stuck at the onset reading"
        );
        assert!((f1.radar.lead.unwrap().d_rel.raw() - 60.0).abs() < 1e-12, "radar untouched");
        // After the window the hold is released; a later window would re-capture.
        let mut f2 = frame(40.0, 60.0);
        eng.apply_sensors(Tick::new(20), &mut f2);
        assert!((f2.gps.speed.mps() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn latency_replays_history() {
        let spec =
            FaultSpec::window(FaultKind::SensorLatency, FaultTarget::Gps, 50, 10).with_delay(3);
        let mut eng = FaultEngine::new(1, FaultSchedule::single(spec));
        for t in 0..60u64 {
            let mut f = frame(t as f64, 60.0);
            let plan = eng.apply_sensors(Tick::new(t), &mut f);
            if t >= 50 {
                assert!(
                    (f.gps.speed.mps() - (t - 3) as f64).abs() < 1e-12,
                    "tick {t} sees the reading from 3 ticks ago"
                );
                let (stamp, _) = plan.gps.unwrap();
                assert_eq!(
                    stamp,
                    Tick::new(t - 3),
                    "the replayed reading carries its original sample tick"
                );
                let (lane_stamp, _) = plan.lane.unwrap();
                assert_eq!(lane_stamp, Tick::new(t), "untargeted stream stays current");
            }
        }
    }

    #[test]
    fn latency_before_history_exists_uses_current() {
        let spec =
            FaultSpec::window(FaultKind::SensorLatency, FaultTarget::Gps, 0, 10).with_delay(5);
        let mut eng = FaultEngine::new(1, FaultSchedule::single(spec));
        let mut f = frame(22.0, 60.0);
        eng.apply_sensors(Tick::new(2), &mut f);
        assert!((f.gps.speed.mps() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn noise_burst_is_bounded_and_seeded() {
        let spec = FaultSpec::window(FaultKind::SensorNoiseBurst, FaultTarget::All, 0, 100)
            .with_intensity(1.0);
        let run = |seed| {
            let mut eng = FaultEngine::new(seed, FaultSchedule::single(spec));
            (0..100u64)
                .map(|t| {
                    let mut f = frame(25.0, 60.0);
                    eng.apply_sensors(Tick::new(t), &mut f);
                    assert!((f.gps.speed.mps() - 25.0).abs() <= 2.0 + 1e-12);
                    let lead = f.radar.lead.unwrap();
                    assert!((lead.d_rel.raw() - 60.0).abs() <= 5.0 + 1e-12);
                    f.gps.speed.mps()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3), "same seed, same noise");
        assert_ne!(run(3), run(4), "different seed, different noise");
    }

    #[test]
    fn bus_delay_lags_plan_but_not_frame() {
        let spec =
            FaultSpec::window(FaultKind::BusDelay, FaultTarget::Gps, 20, 10).with_delay(4);
        let mut eng = FaultEngine::new(1, FaultSchedule::single(spec));
        let mut last_plan = None;
        for t in 0..30u64 {
            let mut f = frame(t as f64, 60.0);
            eng.apply_sensors(Tick::new(t), &mut f);
            assert!((f.gps.speed.mps() - t as f64).abs() < 1e-12, "frame is current");
            last_plan = Some(eng.apply_sensors(Tick::new(t), &mut f));
        }
        let (stamp, gps) = last_plan.and_then(|p| p.gps).unwrap();
        assert!((gps.speed.mps() - 25.0).abs() < 1e-12, "plan is 4 ticks stale");
        assert_eq!(stamp, Tick::new(25), "stamped at the sample tick, not delivery");
    }

    #[test]
    fn bus_off_clears_all_frames() {
        let spec = FaultSpec::window(FaultKind::CanBusOff, FaultTarget::All, 0, 10);
        let mut eng = FaultEngine::new(1, FaultSchedule::single(spec));
        let mut frames = vec![
            CanFrame::new(0x1FA, &[0u8; 8]).unwrap(),
            CanFrame::new(0x30C, &[0u8; 5]).unwrap(),
        ];
        eng.apply_can(Tick::new(3), &mut frames);
        assert!(frames.is_empty());
        assert_eq!(eng.faults_injected(), 2);
        assert_eq!(eng.active_mask() & (1 << FaultKind::CanBusOff.index()), 1 << 6);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let spec = FaultSpec::window(FaultKind::CanBitFlip, FaultTarget::All, 0, 10);
        let mut eng = FaultEngine::new(9, FaultSchedule::single(spec));
        let pristine = CanFrame::new(0x1FA, &[0xA5; 8]).unwrap();
        let mut frames = vec![pristine];
        eng.apply_can(Tick::new(1), &mut frames);
        let flipped = frames.first().copied().unwrap();
        let diff: u32 = pristine
            .data()
            .iter()
            .zip(flipped.data())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one payload bit flipped");
    }

    #[test]
    fn can_faults_are_reproducible() {
        let spec = FaultSpec::window(FaultKind::CanFrameDrop, FaultTarget::All, 0, 100)
            .with_intensity(0.5);
        let run = |seed| {
            let mut eng = FaultEngine::new(seed, FaultSchedule::single(spec));
            let mut survivors = Vec::new();
            for t in 0..100u64 {
                let mut frames = vec![
                    CanFrame::new(0x1FA, &[1; 8]).unwrap(),
                    CanFrame::new(0x30C, &[2; 5]).unwrap(),
                ];
                eng.apply_can(Tick::new(t), &mut frames);
                survivors.push(frames.len());
            }
            (survivors, eng.faults_injected())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).1, 0, "half intensity drops something in 100 ticks");
    }

    #[test]
    fn draw01_is_uniform_enough() {
        let mut acc = 0.0;
        for i in 0..10_000u64 {
            let d = draw01(42, i, 0, 0);
            assert!((0.0..1.0).contains(&d));
            acc += d;
        }
        assert!((acc / 10_000.0 - 0.5).abs() < 0.02, "mean near 0.5");
    }
}
