//! The fault grammar: what can fail, where, when, and how hard.

use serde::{Deserialize, Serialize};

/// Maximum number of concurrent fault specs in one [`FaultSchedule`].
///
/// A fixed capacity keeps the schedule `Copy`, which keeps
/// `HarnessConfig` `Copy` — campaign plans stay plain-old-data.
pub const MAX_FAULTS: usize = 8;

/// The failure modes the engine can inject.
///
/// Deliberately *exhaustive* for consumers (adas-lint R8): adding a fault
/// kind must be a compile-time event at every match, never absorbed by a
/// `_ =>` arm — a new failure mode silently ignored by the degradation
/// layer or the resilience report is exactly the bug this rule exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The targeted sensor module goes silent: its message stream stops
    /// entirely for the tick (per-tick probability = `intensity`).
    SensorDropout,
    /// The targeted sensor repeats the reading captured at fault onset
    /// (`intensity` is ignored: a stuck sensor is stuck).
    SensorStuckAt,
    /// Bounded deterministic noise is added to the targeted readings,
    /// scaled by `intensity` (1.0 ≈ an order of magnitude above the
    /// nominal sensor noise).
    SensorNoiseBurst,
    /// The targeted sensor reports the reading from `delay` ticks ago.
    SensorLatency,
    /// Each actuator CAN frame is dropped with probability `intensity`.
    CanFrameDrop,
    /// With probability `intensity` per frame, one payload bit is flipped
    /// *without* repairing the checksum — receivers reject the frame and
    /// hold their last value (contrast the attack engine, which repairs).
    CanBitFlip,
    /// Bus-off window: every actuator frame is lost while active.
    CanBusOff,
    /// IPC loss: each sensor message publish is independently dropped with
    /// probability `intensity` (the sensor itself read correctly).
    BusPublishDrop,
    /// IPC lag: published sensor messages carry the readings from `delay`
    /// ticks ago while the sensors themselves are current.
    BusDelay,
}

impl FaultKind {
    /// Every fault kind, in [`Self::index`] order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::SensorDropout,
        FaultKind::SensorStuckAt,
        FaultKind::SensorNoiseBurst,
        FaultKind::SensorLatency,
        FaultKind::CanFrameDrop,
        FaultKind::CanBitFlip,
        FaultKind::CanBusOff,
        FaultKind::BusPublishDrop,
        FaultKind::BusDelay,
    ];

    /// Stable dense index (also the bit position in the active-fault mask).
    pub fn index(self) -> usize {
        match self {
            FaultKind::SensorDropout => 0,
            FaultKind::SensorStuckAt => 1,
            FaultKind::SensorNoiseBurst => 2,
            FaultKind::SensorLatency => 3,
            FaultKind::CanFrameDrop => 4,
            FaultKind::CanBitFlip => 5,
            FaultKind::CanBusOff => 6,
            FaultKind::BusPublishDrop => 7,
            FaultKind::BusDelay => 8,
        }
    }

    /// Snake-case name used in reports and `BENCH_resilience.json`.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SensorDropout => "sensor_dropout",
            FaultKind::SensorStuckAt => "sensor_stuck_at",
            FaultKind::SensorNoiseBurst => "sensor_noise_burst",
            FaultKind::SensorLatency => "sensor_latency",
            FaultKind::CanFrameDrop => "can_frame_drop",
            FaultKind::CanBitFlip => "can_bit_flip",
            FaultKind::CanBusOff => "can_bus_off",
            FaultKind::BusPublishDrop => "bus_publish_drop",
            FaultKind::BusDelay => "bus_delay",
        }
    }

    /// Whether the kind acts on the CAN actuator path (vs. the sensor/bus
    /// side).
    pub fn is_can(self) -> bool {
        match self {
            FaultKind::CanFrameDrop | FaultKind::CanBitFlip | FaultKind::CanBusOff => true,
            FaultKind::SensorDropout
            | FaultKind::SensorStuckAt
            | FaultKind::SensorNoiseBurst
            | FaultKind::SensorLatency
            | FaultKind::BusPublishDrop
            | FaultKind::BusDelay => false,
        }
    }
}

/// Which sensor stream(s) a sensor/bus-side fault hits. CAN-side faults
/// ignore the target (there is one actuator bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// `gpsLocationExternal` only.
    Gps,
    /// `modelV2` (lane perception) only.
    Camera,
    /// `radarState` only.
    Radar,
    /// Every sensor stream.
    All,
}

impl FaultTarget {
    /// Whether the GPS stream is targeted.
    pub fn hits_gps(self) -> bool {
        matches!(self, FaultTarget::Gps | FaultTarget::All)
    }

    /// Whether the lane-perception stream is targeted.
    pub fn hits_camera(self) -> bool {
        matches!(self, FaultTarget::Camera | FaultTarget::All)
    }

    /// Whether the radar stream is targeted.
    pub fn hits_radar(self) -> bool {
        matches!(self, FaultTarget::Radar | FaultTarget::All)
    }
}

/// One scheduled fault: a kind, a target, an activity window and knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// What fails.
    pub kind: FaultKind,
    /// Which sensor stream(s), for sensor/bus-side kinds.
    pub target: FaultTarget,
    /// First active tick.
    pub start: u64,
    /// Window length in ticks; the fault is active on
    /// `start..start + duration`.
    pub duration: u64,
    /// Kind-specific severity in `[0, 1]` (usually a per-tick or per-frame
    /// probability); see [`FaultKind`] for each kind's reading of it.
    pub intensity: f64,
    /// Staleness in ticks for [`FaultKind::SensorLatency`] /
    /// [`FaultKind::BusDelay`]; clamped to the engine's history window.
    pub delay: u32,
}

impl FaultSpec {
    /// A full-intensity fault over `start..start + duration` with a 10-tick
    /// delay parameter (only read by the latency/delay kinds).
    pub fn window(kind: FaultKind, target: FaultTarget, start: u64, duration: u64) -> Self {
        Self {
            kind,
            target,
            start,
            duration,
            intensity: 1.0,
            delay: 10,
        }
    }

    /// The same spec with a different intensity.
    pub fn with_intensity(self, intensity: f64) -> Self {
        Self { intensity, ..self }
    }

    /// The same spec with a different delay.
    pub fn with_delay(self, delay: u32) -> Self {
        Self { delay, ..self }
    }

    /// Whether the fault is active at `tick`.
    pub fn active_at(&self, tick: u64) -> bool {
        tick >= self.start && tick - self.start < self.duration
    }

    /// First tick *after* the activity window.
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.duration)
    }
}

/// Up to [`MAX_FAULTS`] fault specs, `Copy` so it can ride inside
/// `HarnessConfig` and campaign plans.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    slots: [Option<FaultSpec>; MAX_FAULTS],
}

impl FaultSchedule {
    /// A schedule with no faults (the harness attaches no engine for it).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A schedule holding exactly one fault.
    pub fn single(spec: FaultSpec) -> Self {
        let mut s = Self::default();
        let _ = s.add(spec);
        s
    }

    /// Adds a spec; returns `false` (schedule unchanged) when all
    /// [`MAX_FAULTS`] slots are occupied.
    pub fn add(&mut self, spec: FaultSpec) -> bool {
        for slot in self.slots.iter_mut() {
            if slot.is_none() {
                *slot = Some(spec);
                return true;
            }
        }
        false
    }

    /// Whether no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The scheduled specs, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &FaultSpec> {
        self.slots.iter().flatten()
    }

    /// First tick after the last fault window closes (`None` when empty).
    /// The recovery-latency clock starts here.
    pub fn last_end(&self) -> Option<u64> {
        self.iter().map(FaultSpec::end).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_matches_all_order() {
        for (i, k) in FaultKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn kind_labels_are_distinct() {
        let labels: Vec<&str> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn spec_window_bounds() {
        let s = FaultSpec::window(FaultKind::SensorDropout, FaultTarget::Radar, 100, 50);
        assert!(!s.active_at(99));
        assert!(s.active_at(100));
        assert!(s.active_at(149));
        assert!(!s.active_at(150));
        assert_eq!(s.end(), 150);
    }

    #[test]
    fn schedule_push_and_capacity() {
        let mut s = FaultSchedule::empty();
        assert!(s.is_empty());
        let spec = FaultSpec::window(FaultKind::CanBusOff, FaultTarget::All, 0, 10);
        for _ in 0..MAX_FAULTS {
            assert!(s.add(spec));
        }
        assert!(!s.add(spec), "ninth spec is rejected");
        assert_eq!(s.len(), MAX_FAULTS);
        assert_eq!(s.last_end(), Some(10));
    }

    #[test]
    fn target_coverage() {
        assert!(FaultTarget::All.hits_gps());
        assert!(FaultTarget::All.hits_camera());
        assert!(FaultTarget::All.hits_radar());
        assert!(FaultTarget::Radar.hits_radar());
        assert!(!FaultTarget::Radar.hits_gps());
        assert!(!FaultTarget::Gps.hits_camera());
    }
}
