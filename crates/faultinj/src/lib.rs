//! Deterministic, seedable fault injection for the simulation platform.
//!
//! The attack engine (`crates/core`) models an *adversary* corrupting
//! actuator frames at the worst moment; this crate models the *mundane*
//! failures every real ADAS must degrade through — sensor dropout, stuck
//! readings, noise bursts, stale data, CAN errors and IPC message loss.
//! Keeping both in the same harness lets a resilience campaign separate
//! attack impact from plain fragility: a safety claim about the degradation
//! layer is only credible if benign faults are part of the test matrix.
//!
//! Design constraints, shared with the rest of the workspace:
//!
//! * **Deterministic**: every draw is a stateless hash of
//!   `(seed, tick, slot, salt)` — no RNG state, no wall clock, so the same
//!   seed reproduces the same faulted run bit for bit, and fault draws never
//!   perturb the simulation's own RNG streams.
//! * **Allocation-free after construction**: the engine allocates its
//!   history ring once in [`FaultEngine::new`]; `apply_sensors` /
//!   `apply_can` never touch the heap, preserving the zero-allocation
//!   warm-tick invariant.
//! * **Panic-free**: the per-tick path is reachable from `Harness::step`,
//!   so it uses no indexing, `unwrap` or panicking macros (adas-lint R7).
//!
//! See `EXPERIMENTS.md` ("Resilience campaigns") for the fault grammar.

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]
#![warn(missing_docs)]

mod engine;
mod spec;

pub use engine::{FaultEngine, PublishPlan};
pub use spec::{FaultKind, FaultSchedule, FaultSpec, FaultTarget, MAX_FAULTS};
