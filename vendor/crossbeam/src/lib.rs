//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The workspace only uses `crossbeam::thread::scope` (in the campaign
//! runner, `platform::experiment::run_parallel`), which predates — and is
//! now superseded by — `std::thread::scope`. This shim adapts the std
//! API to crossbeam's signature: the scope closure and each spawned
//! closure receive a `&Scope` handle, and `scope` returns a `Result`
//! carrying the panic payload if any worker panicked.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle passed to the scope closure and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a `&Scope` so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns. Returns `Err` with the panic payload if the scope
    /// closure or any unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }
}
