//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate.
//!
//! `canbus` uses `Bytes`/`BytesMut` as append-only capture buffers, never
//! for zero-copy slicing, so plain `Vec<u8>` backing is sufficient. The
//! `BufMut` put-methods are big-endian, matching the real crate (and the
//! `from_be_bytes` parsing in `canbus::Capture::parse`).

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (stand-in for `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Returns a new buffer covering `range` (copying; the real crate
    /// shares the allocation, which callers cannot observe).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Self {
            data: self.data[start..end].to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Big-endian append interface (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u16` big-endian.
    fn put_u16(&mut self, v: u16);
    /// Appends a `u32` big-endian.
    fn put_u32(&mut self, v: u32);
    /// Appends a `u64` big-endian.
    fn put_u64(&mut self, v: u64);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, Bytes, BytesMut};

    #[test]
    fn put_methods_are_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_u16(0x090A);
        buf.put_u8(0x0B);
        buf.put_slice(&[0x0C, 0x0D]);
        let frozen: Bytes = buf.freeze();
        assert_eq!(
            &frozen[..],
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]
        );
        assert_eq!(frozen.len(), 13);
    }

    #[test]
    fn copy_from_slice_round_trips() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(&b[1..], &[2, 3]);
    }
}
