//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the macro/API surface `crates/bench/benches/micro.rs` uses
//! (`black_box`, `Criterion::bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`) over a simple calibrated
//! wall-clock runner: each benchmark is warmed up, calibrated to a target
//! measurement window, then sampled several times; the median
//! nanoseconds-per-iteration is reported on stdout. No statistics files,
//! no HTML reports, no CLI filtering.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark registry and runner.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(200),
            samples: 7,
        }
    }
}

impl Criterion {
    /// Builder hook kept for API compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.samples,
            median_ns: 0.0,
        };
        f(&mut bencher);
        println!("{name:<28} time: {}", format_ns(bencher.median_ns));
        self
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measures `routine`, storing the median ns/iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up while estimating the per-iteration cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, u64::MAX);

        let mut sample_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = sample_ns[sample_ns.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:.3} ms/iter", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
