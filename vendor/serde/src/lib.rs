//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker — nothing actually serializes through
//! serde (the trace layer's CSV/JSON export is hand-rolled). The traits
//! here are therefore empty markers with blanket impls, and the derives
//! (re-exported from the vendored `serde_derive`) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; implemented for every
/// type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
