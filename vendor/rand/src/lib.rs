//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `rand 0.8`:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over primitive ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — not the ChaCha12 stream the
//! real `StdRng` uses, but a high-quality generator whose uniform output
//! passes the workspace's statistical tests (Box–Muller moments,
//! Ornstein–Uhlenbeck mean reversion).
//!
//! Determinism contract: for a fixed seed the sequence is stable across
//! runs, platforms, and — unlike the real `StdRng`, whose stream is only
//! guaranteed per minor version — across upgrades of this shim, because
//! the repo's campaign seeding (`platform::experiment::mix_seed`) and the
//! golden trace tests depend on it.

use std::ops::Range;

/// Seeding interface: the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        low + (high - low) * unit
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Modulo bias is negligible for the spans this workspace
                // draws (all far below 2^64).
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range `low..high`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_half_open(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_half_open(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<f64>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn uniform_f64_stays_in_range_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_ints_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u8 = rng.gen_range(0u8..4);
            assert!(x < 4);
            let y: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }
}
