//! Sampling strategies (`prop::sample::select`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy that picks uniformly from a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

/// Uniformly selects one of `choices`.
///
/// # Panics
///
/// Panics (on first draw) if `choices` is empty.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    Select { choices }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.choices.is_empty(), "select requires at least one choice");
        let i = rng.rng.gen_range(0..self.choices.len());
        self.choices[i].clone()
    }
}
