//! Option strategies (`proptest::option::of`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option`s of an inner strategy's values.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` three times out of four (matching the real crate's default
/// bias toward present values), `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.rng.gen_range(0u8..4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}
