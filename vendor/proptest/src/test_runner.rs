//! Test configuration and the deterministic per-test generator.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is tuned for shrinking-capable engines;
        // 64 deterministic cases keeps tier-1 wall-clock low while still
        // exercising the input space.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic generator backing a `proptest!` test function.
///
/// Seeded from the fully-qualified test name (FNV-1a), so every run of
/// the suite sees the same inputs without a regression-persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Creates a generator seeded from a test name.
    pub fn from_test_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}
