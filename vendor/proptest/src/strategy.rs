//! Value-generation strategies: the subset of proptest's combinator
//! algebra used by this workspace.

use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy simply draws a fresh value per case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
