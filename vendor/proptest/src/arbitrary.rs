//! `any::<T>()` support for the primitive types the workspace samples.

use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain (returned by [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
