//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The shim keeps proptest's surface syntax — the `proptest!` macro,
//! `prop_assert!`, strategies built from ranges / tuples /
//! `prop::sample::select` / `prop_map` / `collection::vec` /
//! `option::of` / `any::<T>()` — but replaces the engine with plain
//! deterministic random testing:
//!
//! - every test function runs `ProptestConfig::cases` iterations with
//!   inputs drawn from a generator seeded from the test's name, so runs
//!   are reproducible without a persistence file;
//! - there is **no shrinking**: a failing case panics with the values the
//!   `proptest!` macro bound, which the workspace's trace-aware
//!   assertions make diagnosable anyway.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Convenience re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module re-export in the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines deterministic random-input test functions.
///
/// Supports the subset of the real macro's grammar used in this
/// workspace: an optional `#![proptest_config(...)]` header and test
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)) => {};
    (@with_config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner_rng =
                $crate::test_runner::TestRng::from_test_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut runner_rng);)+
                $body
            }
        }
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = f64> {
        (0.0..10.0f64).prop_map(|x| 2.0 * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(x in 1.0..5.0f64, y in doubled(), n in 0u8..4) {
            prop_assert!((1.0..5.0).contains(&x));
            prop_assert!((0.0..20.0).contains(&y));
            prop_assert!(n < 4);
        }

        #[test]
        fn collections_and_options(
            xs in crate::collection::vec(0.0..1.0f64, 3..10),
            pair in crate::option::of((0u64..5, 0.0..1.0f64)),
            pick in crate::sample::select(vec![2, 4, 6]),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() >= 3 && xs.len() < 10);
            if let Some((a, b)) = pair {
                prop_assert!(a < 5 && (0.0..1.0).contains(&b));
            }
            prop_assert_eq!(pick % 2, 0);
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn same_test_name_draws_identical_sequences() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::from_test_name("stable-name");
            Strategy::new_value(&(0.0..1.0f64), &mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
