//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact length or a half-open
/// range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        Self {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi > self.size.lo {
            rng.rng.gen_range(self.size.lo..self.size.hi)
        } else {
            self.size.lo
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
