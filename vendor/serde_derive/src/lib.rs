//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` shim blanket-implements its `Serialize` /
//! `Deserialize` marker traits for every type, so these derives only need
//! to exist and parse — they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
