//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s non-poisoning `lock()`
//! signature: a panic while holding the lock does not poison it for later
//! users, matching the semantics `msgbus::Bus` relies on when a
//! campaign worker thread dies mid-publish.

use std::fmt;
use std::sync::PoisonError;

/// Re-export of the guard type; `std`'s guard is API-compatible for the
/// deref-only usage in this workspace.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Non-poisoning mutex with `parking_lot`'s infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock still usable after a panic");
    }
}
